"""Unit tests for adversary interventions and schedules."""

import numpy as np
import pytest

from repro.adversary import (
    AddAgents,
    AddColour,
    InterventionSchedule,
    RecolourColour,
    run_with_interventions,
)
from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine.aggregate import AggregateSimulation
from repro.engine.array_engine import ArraySimulation
from repro.engine.batched import BatchedAggregateSimulation
from repro.engine.population import Population
from repro.engine.simulator import Simulation
from repro.experiments.recorder import CountRecorder


def build_agent_engine(seed=0):
    weights = WeightTable([1.0, 2.0])
    protocol = Diversification(weights)
    population = Population.from_colours([0] * 6 + [1] * 6, protocol, k=2)
    return Simulation(protocol, population, rng=seed), weights


def build_aggregate_engine(seed=0):
    weights = WeightTable([1.0, 2.0])
    return AggregateSimulation(weights, dark_counts=[6, 6], rng=seed), weights


def build_batched_engine(seed=0, replications=3):
    weights = WeightTable([1.0, 2.0])
    engine = BatchedAggregateSimulation(
        weights, [6, 6], replications=replications, rng=seed
    )
    return engine, weights


def build_array_engine(seed=0, replications=None):
    weights = WeightTable([1.0, 2.0])
    protocol = Diversification(weights)
    engine = ArraySimulation(
        protocol,
        np.array([0] * 6 + [1] * 6),
        k=2,
        rng=seed,
        replications=replications,
    )
    return engine, weights


class TestAddAgents:
    def test_agent_engine(self):
        simulation, _ = build_agent_engine()
        AddAgents(colour=1, count=4, dark=True).apply(simulation)
        assert simulation.population.n == 16
        assert simulation.population.dark_counts()[1] == 10

    def test_aggregate_engine(self):
        engine, _ = build_aggregate_engine()
        AddAgents(colour=0, count=3, dark=False).apply(engine)
        assert engine.light_counts()[0] == 3
        assert engine.n == 15


class TestAddColour:
    def test_agent_engine_grows_weights(self):
        simulation, weights = build_agent_engine()
        AddColour(weight=3.0, count=2, dark=True).apply(simulation)
        assert weights.k == 3
        assert simulation.population.colour_counts()[2] == 2

    def test_aggregate_engine(self):
        engine, weights = build_aggregate_engine()
        AddColour(weight=4.0, count=1, dark=True).apply(engine)
        assert weights.k == 3
        assert engine.dark_counts()[2] == 1

    def test_protocol_without_weights_rejected(self):
        from repro.baselines.voter import VoterModel

        protocol = VoterModel()
        population = Population.from_colours([0, 1], protocol, k=2)
        simulation = Simulation(protocol, population, rng=0)
        with pytest.raises(TypeError):
            AddColour(weight=2.0, count=1).apply(simulation)


class TestRecolour:
    def test_agent_engine(self):
        simulation, _ = build_agent_engine()
        RecolourColour(source=0, target=1).apply(simulation)
        np.testing.assert_array_equal(
            simulation.population.colour_counts(), [0, 12]
        )

    def test_preserves_shades(self):
        simulation, _ = build_agent_engine()
        simulation.run(200)  # create some light agents
        light_total = simulation.population.light_counts().sum()
        RecolourColour(source=0, target=1).apply(simulation)
        assert simulation.population.light_counts().sum() == light_total

    def test_aggregate_engine(self):
        engine, _ = build_aggregate_engine()
        RecolourColour(source=1, target=0).apply(engine)
        np.testing.assert_array_equal(engine.colour_counts(), [12, 0])

    def test_unsupported_engine_rejected(self):
        with pytest.raises(TypeError):
            AddAgents(0, 1).apply(object())


class TestBatchedEngineInterventions:
    """Interventions dispatch onto the fused (R, 2k) engine and apply
    to every replication at once."""

    def test_add_agents_batch_wide(self):
        engine, _ = build_batched_engine()
        AddAgents(colour=0, count=3, dark=False).apply(engine)
        assert engine.n == 15
        np.testing.assert_array_equal(engine.light_counts()[:, 0], 3)

    def test_add_colour_widens_matrix_and_table(self):
        engine, weights = build_batched_engine()
        AddColour(weight=4.0, count=2, dark=True).apply(engine)
        assert weights.k == 3
        assert engine.k == 3
        assert engine.dark_counts().shape == (3, 3)
        np.testing.assert_array_equal(engine.dark_counts()[:, 2], 2)
        np.testing.assert_array_equal(engine.light_counts()[:, 2], 0)
        # The dynamics keep running after the widening.
        engine.run(500)
        assert (engine.colour_counts().sum(axis=1) == 14).all()

    def test_recolour_batch_wide(self):
        engine, _ = build_batched_engine()
        engine.run(300)  # create some light agents
        totals = engine.colour_counts().sum(axis=1)
        RecolourColour(source=1, target=0).apply(engine)
        counts = engine.colour_counts()
        np.testing.assert_array_equal(counts[:, 1], 0)
        np.testing.assert_array_equal(counts.sum(axis=1), totals)

    def test_invalid_arguments_rejected(self):
        engine, _ = build_batched_engine()
        with pytest.raises(ValueError):
            engine.add_agents(5, 1)
        with pytest.raises(ValueError):
            engine.add_agents(0, -1)
        with pytest.raises(ValueError):
            engine.recolour(0, 9)


class TestArrayEngineInterventions:
    """Interventions dispatch onto the vectorised agent-level engine,
    in single-run and batched mode."""

    def test_add_agents_single(self):
        engine, _ = build_array_engine()
        AddAgents(colour=1, count=4, dark=True).apply(engine)
        assert engine.n == 16
        assert engine.dark_counts()[1] == 10
        engine.run(200)
        assert engine.colour_counts().sum() == 16

    def test_add_agents_light(self):
        engine, _ = build_array_engine()
        AddAgents(colour=0, count=2, dark=False).apply(engine)
        assert engine.light_counts()[0] == 2

    def test_add_agents_batched(self):
        engine, _ = build_array_engine(replications=4)
        AddAgents(colour=0, count=3, dark=True).apply(engine)
        assert engine.n == 15
        counts = engine.colour_counts()
        assert counts.shape == (4, 2)
        np.testing.assert_array_equal(counts.sum(axis=1), 15)
        engine.run(200)
        assert (engine.colour_counts().sum(axis=1) == 15).all()

    def test_add_colour_grows_weights_and_slots(self):
        engine, weights = build_array_engine()
        AddColour(weight=3.0, count=2, dark=True).apply(engine)
        assert weights.k == 3
        assert engine.k == 3
        assert engine.colour_counts()[2] == 2
        engine.run(300)
        assert engine.colour_counts().sum() == 14

    def test_recolour_preserves_shades(self):
        engine, _ = build_array_engine()
        engine.run(200)  # create some light agents
        light_total = engine.light_counts().sum()
        RecolourColour(source=0, target=1).apply(engine)
        counts = engine.colour_counts()
        assert counts[0] == 0 and counts[1] == 12
        assert engine.light_counts().sum() == light_total

    def test_growth_rejected_on_csr_topology(self):
        from repro.topology import CycleGraph

        weights = WeightTable([1.0, 2.0])
        engine = ArraySimulation(
            Diversification(weights),
            np.array([0] * 6 + [1] * 6),
            k=2,
            topology=CycleGraph(12),
            rng=0,
        )
        with pytest.raises(ValueError, match="complete graph"):
            engine.add_agents(0, 2)

    def test_add_colour_without_weight_table_rejected(self):
        from repro.baselines.voter import VoterModel

        engine = ArraySimulation(
            VoterModel(), np.array([0, 1, 0, 1]), k=2, rng=0
        )
        with pytest.raises(TypeError):
            AddColour(weight=2.0, count=1).apply(engine)

    def test_live_counts_follow_interventions(self):
        """With observers attached the engine keeps live count tables;
        interventions must keep them in sync."""
        from repro.engine.observers import MinCountTracker

        weights = WeightTable([1.0, 2.0])
        engine = ArraySimulation(
            Diversification(weights),
            np.array([0] * 6 + [1] * 6),
            k=2,
            rng=0,
            observers=[MinCountTracker()],
        )
        engine.run(100)
        AddColour(weight=2.0, count=3, dark=True).apply(engine)
        RecolourColour(source=0, target=1).apply(engine)
        engine.run(100)
        np.testing.assert_array_equal(
            engine.colour_counts(),
            np.bincount(
                engine.population.colours_view(), minlength=engine.k
            ),
        )
        assert engine.colour_counts().sum() == 15


class TestSchedule:
    def test_entries_sorted(self):
        schedule = InterventionSchedule(
            [(50, AddAgents(0, 1)), (10, AddAgents(1, 1))]
        )
        times = [t for t, _ in schedule.entries()]
        assert times == [10, 50]

    def test_add_keeps_order(self):
        schedule = InterventionSchedule([(50, AddAgents(0, 1))])
        schedule.add(10, AddAgents(1, 1))
        assert [t for t, _ in schedule.entries()] == [10, 50]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            InterventionSchedule([(-1, AddAgents(0, 1))])
        schedule = InterventionSchedule()
        with pytest.raises(ValueError):
            schedule.add(-5, AddAgents(0, 1))

    def test_pending_after(self):
        schedule = InterventionSchedule(
            [(10, AddAgents(0, 1)), (20, AddAgents(1, 1))]
        )
        assert len(schedule.pending_after(10)) == 1
        assert len(schedule) == 2


class TestRunWithInterventions:
    def test_interventions_applied_at_time(self):
        engine, _ = build_aggregate_engine(seed=1)
        schedule = InterventionSchedule([(500, AddAgents(0, 10, dark=True))])
        run_with_interventions(engine, 1000, schedule)
        assert engine.time == 1000
        assert engine.n == 22

    def test_recorder_snapshots_cover_run(self):
        engine, _ = build_aggregate_engine(seed=2)
        recorder = CountRecorder(interval=100)
        run_with_interventions(engine, 1000, None, recorder=recorder)
        times = recorder.times()
        assert times[0] == 0
        assert times[-1] >= 900
        assert len(times) >= 10

    def test_recorder_sees_colour_growth(self):
        engine, _ = build_aggregate_engine(seed=3)
        schedule = InterventionSchedule([(300, AddColour(2.0, 5))])
        recorder = CountRecorder(interval=100)
        run_with_interventions(engine, 600, schedule, recorder=recorder)
        counts = recorder.colour_counts()
        assert counts.shape[1] == 3
        # Early snapshots are padded with zero for the new colour.
        assert counts[0, 2] == 0
        assert counts[-1, 2] >= 5

    def test_agent_engine_supported(self):
        simulation, _ = build_agent_engine(seed=4)
        schedule = InterventionSchedule([(100, AddAgents(1, 2))])
        run_with_interventions(simulation, 300, schedule)
        assert simulation.time == 300
        assert simulation.population.n == 14

    def test_negative_total_rejected(self):
        engine, _ = build_aggregate_engine()
        with pytest.raises(ValueError):
            run_with_interventions(engine, -1, None)
