"""Unit tests for the fault-tolerance layer: the retry policy, the
fault-spec grammar, deterministic fault selection, the in-process
attempt runner and the tear-file injectors."""

import json

import numpy as np
import pytest

from repro.experiments.cache import ShardCache
from repro.experiments.faults import (
    CRASH_EXIT_CODE,
    FAULT_KINDS,
    Fault,
    FaultPlan,
    InjectedFault,
    NO_RETRY,
    RetryPolicy,
    ShardOutcome,
    run_attempt,
    run_serial_shards,
)


def measure_sum(params, rng):
    return {"total": params["a"] + params["b"], "draw": float(rng.random())}


class TestRetryPolicy:
    def test_defaults_are_the_legacy_contract(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.timeout_s is None
        assert NO_RETRY.delay(1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_exponential_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.1,
                             backoff_factor=2.0)
        assert policy.delay(0) == 0.0
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_payload_round_trips_through_json(self):
        policy = RetryPolicy(max_attempts=3, timeout_s=2.5, backoff_s=0.5)
        payload = json.loads(json.dumps(policy.to_payload()))
        assert payload["max_attempts"] == 3
        assert payload["timeout_s"] == 2.5


class TestFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault(kind="melt")

    def test_transient_fault_fires_only_on_early_attempts(self):
        fault = Fault(kind="raise", attempts=2)
        assert fault.active(1) and fault.active(2)
        assert not fault.active(3)

    def test_crash_exit_code_is_distinctive(self):
        # 70 = EX_SOFTWARE; anything nonzero works, but pin it so the
        # pool's dead-worker diagnostics stay stable.
        assert CRASH_EXIT_CODE == 70


class TestFaultSpecGrammar:
    def test_index_targets(self):
        plan = FaultPlan.from_spec("raise:i0,crash:i2|4", shards=6)
        assert plan.for_shard(0)[0].kind == "raise"
        assert plan.for_shard(2)[0].kind == "crash"
        assert plan.for_shard(4)[0].kind == "crash"
        assert plan.for_shard(1) == ()

    def test_options(self):
        plan = FaultPlan.from_spec(
            "hang:i1:attempts=3:seconds=0.5", shards=2
        )
        (fault,) = plan.for_shard(1)
        assert fault.attempts == 3
        assert fault.seconds == 0.5

    def test_probabilistic_target_is_deterministic_in_base_seed(self):
        one = FaultPlan.from_spec("raise:p0.5", shards=40, base_seed=7)
        two = FaultPlan.from_spec("raise:p0.5", shards=40, base_seed=7)
        other = FaultPlan.from_spec("raise:p0.5", shards=40, base_seed=8)
        assert one.by_shard.keys() == two.by_shard.keys()
        assert one.by_shard.keys() != other.by_shard.keys()

    def test_probability_extremes(self):
        assert not FaultPlan.from_spec("raise:p0.0", shards=10).by_shard
        assert len(
            FaultPlan.from_spec("raise:p1.0", shards=10).by_shard
        ) == 10

    @pytest.mark.parametrize(
        "bad",
        [
            "raise",  # no target
            "melt:i0",  # unknown kind
            "raise:i9",  # out of range
            "raise:x3",  # bad target syntax
            "raise:p1.5",  # probability out of [0, 1]
            "raise:i0:lives=9",  # unknown option
        ],
    )
    def test_rejects_malformed_entries(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(bad, shards=4)

    def test_worker_faults_exclude_tear_kinds(self):
        plan = FaultPlan.from_spec(
            "raise:i0,tear-cache:i0,tear-ckpt:i0", shards=1
        )
        assert len(plan.for_shard(0)) == 3
        assert [f.kind for f in plan.worker_faults(0)] == ["raise"]

    def test_every_kind_parses(self):
        for kind in FAULT_KINDS:
            plan = FaultPlan.from_spec(f"{kind}:i0", shards=1)
            assert plan.for_shard(0)[0].kind == kind


class TestRunAttempt:
    def test_clean_attempt(self):
        value, error, seconds = run_attempt(
            measure_sum, {"a": 1, "b": 2}, np.random.SeedSequence(5)
        )
        assert error is None
        assert value["total"] == 3
        assert seconds >= 0.0

    def test_measure_exception_returns_traceback(self):
        def broken(params, rng):
            raise RuntimeError("kaboom in measure")

        value, error, _ = run_attempt(broken, {}, None)
        assert value is None
        assert "kaboom in measure" in error
        assert "Traceback" in error

    def test_non_mapping_value_is_a_failure(self):
        value, error, _ = run_attempt(lambda params, rng: 42, {}, None)
        assert value is None
        assert "non-mapping" in error

    def test_in_process_faults_never_kill_the_orchestrator(self):
        # crash/hang convert to raised InjectedFault in-process: the
        # serial path must simulate, not execute, process-level faults.
        for kind in ("raise", "crash", "hang", "corrupt"):
            value, error, _ = run_attempt(
                measure_sum, {"a": 1, "b": 2}, None,
                faults=(Fault(kind=kind, attempts=1, seconds=30.0),),
                attempt=1, in_process=True,
            )
            assert value is None, kind
            assert "injected" in error, kind

    def test_fault_expires_after_its_attempt_budget(self):
        faults = (Fault(kind="raise", attempts=2),)
        _, error1, _ = run_attempt(
            measure_sum, {"a": 1, "b": 2}, None, faults=faults, attempt=2
        )
        value3, error3, _ = run_attempt(
            measure_sum, {"a": 1, "b": 2}, None, faults=faults, attempt=3
        )
        assert error1 is not None
        assert error3 is None and value3["total"] == 3


class TestRunSerialShards:
    def test_retry_recovers_transient_fault(self):
        faults = (Fault(kind="raise", attempts=1),)
        tasks = [
            ({"a": 1, "b": 1}, None, faults),
            ({"a": 2, "b": 2}, None, ()),
        ]
        outcomes = run_serial_shards(
            measure_sum, tasks, RetryPolicy(max_attempts=2)
        )
        assert all(isinstance(o, ShardOutcome) for o in outcomes)
        assert outcomes[0].ok and outcomes[0].attempts == 2
        assert len(outcomes[0].attempt_errors) == 1
        assert outcomes[1].ok and outcomes[1].attempts == 1

    def test_stop_on_failure_leaves_rest_unrun(self):
        faults = (Fault(kind="raise", attempts=99),)
        tasks = [
            ({"a": 1, "b": 1}, None, ()),
            ({"a": 2, "b": 2}, None, faults),
            ({"a": 3, "b": 3}, None, ()),
        ]
        outcomes = run_serial_shards(
            measure_sum, tasks, NO_RETRY, stop_on_failure=True
        )
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert outcomes[2] is None

    def test_tolerant_mode_runs_everything(self):
        faults = (Fault(kind="raise", attempts=99),)
        tasks = [
            ({"a": 1, "b": 1}, None, faults),
            ({"a": 2, "b": 2}, None, ()),
        ]
        outcomes = run_serial_shards(
            measure_sum, tasks, NO_RETRY, stop_on_failure=False
        )
        assert not outcomes[0].ok
        assert outcomes[1].ok


class TestTearInjection:
    def test_tear_cache_writes_truncated_entry_once(self, tmp_path):
        store = ShardCache(tmp_path)
        plan = FaultPlan.from_spec("tear-cache:i3", shards=5)
        key = "ab" + "0" * 62
        path = plan.cache_put(store, 3, key, {"v": 1}, 0.1,
                              experiment="t")
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())
        # One-shot: the second store of the same shard is clean.
        plan.cache_put(store, 3, key, {"v": 1}, 0.1, experiment="t")
        assert json.loads(store.path_for(key).read_text())["value"] == {
            "v": 1
        }

    def test_unselected_shard_stores_cleanly(self, tmp_path):
        store = ShardCache(tmp_path)
        plan = FaultPlan.from_spec("tear-cache:i3", shards=5)
        key = "cd" + "1" * 62
        plan.cache_put(store, 0, key, {"v": 2}, 0.1, experiment="t")
        assert store.get(key)["value"] == {"v": 2}

    def test_tear_checkpoint_truncates_once(self, tmp_path):
        target = tmp_path / "plan.ckpt.json"
        doc = json.dumps({"format": "repro-plan-ckpt/v1", "x": 1})
        target.write_text(doc)
        plan = FaultPlan.from_spec("tear-ckpt:i1", shards=3)
        assert plan.tear_checkpoint(target, [0, 1]) is True
        with pytest.raises(json.JSONDecodeError):
            json.loads(target.read_text())
        target.write_text(doc)
        assert plan.tear_checkpoint(target, [0, 1]) is False
        assert json.loads(target.read_text())["x"] == 1


class TestInjectedFaultType:
    def test_is_a_runtime_error(self):
        assert issubclass(InjectedFault, RuntimeError)
