"""Unit tests for the empirical statistics helpers."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    colour_survival,
    convergence_time,
    empirical_shares,
    fit_n_log_n,
    fit_power_law,
    max_share_error_series,
    occupancy_agreement,
    tv_distance,
)
from repro.core.weights import WeightTable


class TestTvDistance:
    def test_zero_for_equal(self):
        assert tv_distance([0.3, 0.7], [0.3, 0.7]) == 0

    def test_one_for_disjoint(self):
        assert tv_distance([1, 0], [0, 1]) == pytest.approx(1.0)


class TestShares:
    def test_snapshot(self):
        np.testing.assert_allclose(
            empirical_shares(np.array([1, 3])), [0.25, 0.75]
        )

    def test_series(self):
        shares = empirical_shares(np.array([[1, 3], [2, 2]]))
        np.testing.assert_allclose(shares, [[0.25, 0.75], [0.5, 0.5]])

    def test_error_series(self, skewed_weights):
        series = np.array([[100, 200, 300], [160, 140, 300]])
        errors = max_share_error_series(series, skewed_weights)
        np.testing.assert_allclose(errors, [0.0, 0.1])


class TestConvergenceTime:
    def test_simple_hit(self, skewed_weights):
        times = np.array([0, 10, 20, 30])
        series = np.array(
            [[600, 0, 0], [300, 150, 150], [110, 195, 295], [100, 200, 300]]
        )
        hit = convergence_time(times, series, skewed_weights, bound=0.05)
        assert hit == 20

    def test_requires_staying_inside(self, skewed_weights):
        times = np.array([0, 10, 20, 30])
        series = np.array(
            [[100, 200, 300], [600, 0, 0], [600, 0, 0], [100, 200, 300]]
        )
        hit = convergence_time(times, series, skewed_weights, bound=0.05)
        assert hit == 30  # t=0 is inside but does not stay

    def test_never_converges(self, skewed_weights):
        times = np.array([0, 10])
        series = np.array([[600, 0, 0], [590, 5, 5]])
        assert (
            convergence_time(times, series, skewed_weights, bound=0.01)
            is None
        )

    def test_dwell_fraction(self, skewed_weights):
        times = np.array([0, 1, 2, 3])
        series = np.array(
            [[100, 200, 300], [100, 200, 300], [600, 0, 0], [100, 200, 300]]
        )
        # With dwell 0.7, t=0 qualifies (3/4 of suffix inside).
        hit = convergence_time(
            times, series, skewed_weights, bound=0.05, dwell_fraction=0.7
        )
        assert hit == 0

    def test_dwell_validated(self, skewed_weights):
        with pytest.raises(ValueError):
            convergence_time(
                np.array([0]), np.array([[1, 2, 3]]), skewed_weights,
                0.1, dwell_fraction=0.0,
            )


class TestFits:
    def test_power_law_exact(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x**-0.5
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(-0.5)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_power_law_validates(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, -2.0]), np.array([1.0, 2.0]))

    def test_n_log_n_exact(self):
        ns = np.array([128.0, 256.0, 512.0, 1024.0])
        ts = 5.0 * ns * np.log(ns)
        fit = fit_n_log_n(ns, ts)
        assert fit.constant == pytest.approx(5.0)
        assert fit.relative_residual == pytest.approx(0.0, abs=1e-12)

    def test_n_log_n_detects_mismatch(self):
        ns = np.array([128.0, 256.0, 512.0, 1024.0])
        ts = ns**2  # wrong shape -> residual clearly nonzero
        fit = fit_n_log_n(ns, ts)
        assert fit.relative_residual > 0.1


class TestSurvivalAndOccupancy:
    def test_colour_survival(self):
        series = np.array([[1, 5, 3], [2, 0, 3], [1, 1, 3]])
        np.testing.assert_array_equal(
            colour_survival(series), [True, False, True]
        )

    def test_occupancy_agreement_perfect(self, skewed_weights):
        occupancy = np.tile(skewed_weights.fair_shares(), (5, 1))
        stats = occupancy_agreement(occupancy, skewed_weights)
        assert stats["max_abs_deviation"] == pytest.approx(0.0)
        assert stats["mean_tv"] == pytest.approx(0.0)

    def test_occupancy_agreement_detects_outlier(self, skewed_weights):
        occupancy = np.tile(skewed_weights.fair_shares(), (5, 1))
        occupancy[0] = [1.0, 0.0, 0.0]
        stats = occupancy_agreement(occupancy, skewed_weights)
        assert stats["max_abs_deviation"] == pytest.approx(5 / 6)
        assert stats["max_tv"] > stats["mean_tv"]
