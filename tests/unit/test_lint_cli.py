"""The ``repro lint`` subcommand: exit codes, selectors, formats.

The whole-repo run doubles as the gate the CI job enforces: the
installed package must lint clean (real problems fixed, deliberate
deviations carrying justified inline waivers).
"""

from __future__ import annotations

import json
import pathlib

from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"


def test_whole_repo_lints_clean(capsys):
    assert main(["lint"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_findings_exit_nonzero_with_locations(capsys):
    code = main(["lint", str(FIXTURES)])
    out = capsys.readouterr().out
    assert code == 1
    assert "engine/seam_violations.py:5" in out
    assert "RL101" in out and out.strip().endswith("findings")


def test_select_and_ignore_compose(capsys):
    assert main(["lint", str(FIXTURES), "--select", "RL2,RL5",
                 "--ignore", "RL5"]) == 1
    out = capsys.readouterr().out
    assert "RL20" in out
    assert "RL50" not in out


def test_selected_away_everything_exits_zero(capsys):
    assert main(["lint", str(FIXTURES), "--ignore", "ALL"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_unknown_selector_is_a_usage_error(capsys):
    assert main(["lint", "--select", "RL7"]) == 2
    assert "unknown rule selector" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(capsys):
    assert main(["lint", "does/not/exist.py"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_json_format_is_machine_readable(capsys):
    main(["lint", str(FIXTURES), "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert doc["count"] == len(doc["findings"]) > 0
    first = doc["findings"][0]
    assert set(first) == {
        "path", "relpath", "line", "col", "code", "message"
    }
    codes = {finding["code"] for finding in doc["findings"]}
    assert codes <= {
        code for code in codes if code.startswith("RL")
    }


def test_github_format_emits_error_annotations(capsys):
    main(["lint", str(FIXTURES), "--format", "github"])
    out = capsys.readouterr().out.strip().splitlines()
    assert out and all(line.startswith("::error file=") for line in out)
    assert any("title=repro-lint RL101" in line for line in out)


def test_github_format_is_silent_on_clean_runs(capsys):
    assert main(["lint", "--format", "github"]) == 0
    assert capsys.readouterr().out == ""
