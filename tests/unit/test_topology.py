"""Unit tests for the topology package."""

import numpy as np
import pytest

from repro.engine.rng import make_rng
from repro.topology import (
    AdjacencyTopology,
    CompleteGraph,
    CycleGraph,
    TorusGrid,
    erdos_renyi,
    random_regular,
)


class TestCompleteGraph:
    def test_degree(self):
        assert CompleteGraph(10).degree(3) == 9

    def test_neighbours_exclude_self(self):
        graph = CompleteGraph(5)
        assert 2 not in graph.neighbours(2)
        assert len(graph.neighbours(2)) == 4

    def test_sample_never_self(self):
        graph = CompleteGraph(6)
        rng = make_rng(0)
        assert all(graph.sample_neighbour(3, rng) != 3 for _ in range(500))

    def test_sample_uniform(self):
        graph = CompleteGraph(4)
        rng = make_rng(1)
        draws = [graph.sample_neighbour(0, rng) for _ in range(30_000)]
        counts = np.bincount(draws, minlength=4)
        assert counts[0] == 0
        assert abs(counts[1:] - 10_000).max() < 500

    def test_connected(self):
        assert CompleteGraph(7).is_connected()

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            CompleteGraph(1)


class TestAdjacencyTopology:
    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            AdjacencyTopology(3, [(0, 0), (0, 1), (1, 2)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            AdjacencyTopology(3, [(0, 5)])

    def test_rejects_isolated_nodes(self):
        with pytest.raises(ValueError):
            AdjacencyTopology(3, [(0, 1)])

    def test_duplicate_edges_collapse(self):
        topo = AdjacencyTopology(3, [(0, 1), (1, 0), (1, 2), (0, 2)])
        assert topo.degree(1) == 2

    def test_neighbours_sorted(self):
        topo = AdjacencyTopology(4, [(0, 3), (0, 1), (0, 2), (1, 2), (2, 3), (1, 3)])
        assert topo.neighbours(0) == [1, 2, 3]

    def test_sample_only_neighbours(self):
        topo = AdjacencyTopology(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        rng = make_rng(2)
        draws = {topo.sample_neighbour(0, rng) for _ in range(200)}
        assert draws == {1, 3}


class TestCycleGraph:
    def test_two_regular(self):
        graph = CycleGraph(8)
        assert all(graph.degree(v) == 2 for v in range(8))

    def test_wraparound_neighbours(self):
        graph = CycleGraph(8)
        assert graph.neighbours(0) == [1, 7]

    def test_connected(self):
        assert CycleGraph(11).is_connected()


class TestTorusGrid:
    def test_four_regular(self):
        graph = TorusGrid(4, 5)
        assert graph.n == 20
        assert all(graph.degree(v) == 4 for v in range(20))

    def test_rejects_small_sides(self):
        with pytest.raises(ValueError):
            TorusGrid(2, 5)

    def test_connected(self):
        assert TorusGrid(3, 3).is_connected()

    def test_neighbour_structure(self):
        graph = TorusGrid(3, 3)
        # Node 0 = (0,0): right (0,1)=1, left (0,2)=2, down (1,0)=3,
        # up (2,0)=6.
        assert graph.neighbours(0) == [1, 2, 3, 6]


class TestConnectivityProbe:
    def test_disconnected_components_detected(self):
        # Two disjoint triangles: every node has degree 2, but the
        # graph is disconnected.
        topo = AdjacencyTopology(
            6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        )
        assert not topo.is_connected()

    def test_path_graph_connected(self):
        topo = AdjacencyTopology(4, [(0, 1), (1, 2), (2, 3)])
        assert topo.is_connected()


class TestGenerators:
    def test_random_regular_degree(self):
        topo = random_regular(20, 4, seed=0)
        assert all(topo.degree(v) == 4 for v in range(20))

    def test_random_regular_connected(self):
        assert random_regular(30, 3, seed=1).is_connected()

    def test_random_regular_deterministic(self):
        a = random_regular(16, 4, seed=5)
        b = random_regular(16, 4, seed=5)
        assert all(
            a.neighbours(v) == b.neighbours(v) for v in range(16)
        )

    def test_erdos_renyi_connected(self):
        topo = erdos_renyi(30, 0.3, seed=2)
        assert topo.is_connected()
        assert topo.n == 30

    def test_erdos_renyi_impossible_p_raises(self):
        with pytest.raises(RuntimeError):
            erdos_renyi(40, 0.005, seed=3)
