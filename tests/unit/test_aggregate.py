"""Unit tests for the aggregate (count-based) engine."""

import numpy as np
import pytest

from repro.core.weights import WeightTable
from repro.engine.aggregate import AggregateSimulation, _pick_weighted
from repro.engine.rng import make_rng


def build(weights=None, dark=(5, 5, 5), light=None, seed=0, **kwargs):
    weights = weights or WeightTable([1.0, 2.0, 3.0])
    return AggregateSimulation(
        weights, dark_counts=dark, light_counts=light, rng=seed, **kwargs
    )


class TestConstruction:
    def test_counts_must_match_k(self):
        with pytest.raises(ValueError):
            AggregateSimulation(WeightTable([1.0, 2.0]), dark_counts=[5])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            AggregateSimulation(WeightTable([1.0]), dark_counts=[-1, ][:1])

    def test_needs_two_agents(self):
        with pytest.raises(ValueError):
            AggregateSimulation(WeightTable([1.0]), dark_counts=[1])

    def test_default_light_counts_zero(self):
        engine = build()
        np.testing.assert_array_equal(engine.light_counts(), [0, 0, 0])

    def test_lighten_probabilities_default(self):
        engine = build()
        assert engine._lighten == pytest.approx([1.0, 0.5, 1 / 3])

    def test_lighten_probabilities_override(self):
        engine = build(lighten_probabilities=[1.0, 1.0, 1.0])
        assert engine._lighten == [1.0, 1.0, 1.0]

    def test_lighten_probabilities_validated(self):
        with pytest.raises(ValueError):
            build(lighten_probabilities=[1.0, 2.0, 0.5])

    def test_colour_counts_sum(self):
        engine = build(dark=(3, 4, 5), light=(1, 1, 1))
        assert engine.n == 15
        np.testing.assert_array_equal(engine.colour_counts(), [4, 5, 6])


class TestPerStep:
    def test_step_conserves_population(self):
        engine = build(dark=(10, 10, 10))
        for _ in range(2000):
            engine.step()
        assert engine.n == 30

    def test_time_advances(self):
        engine = build()
        engine.step()
        engine.step()
        assert engine.time == 2

    def test_dark_counts_never_hit_zero(self):
        """Structural sustainability: lightening needs A_i >= 2."""
        engine = build(dark=(1, 1, 28))
        for _ in range(5000):
            engine.step()
        assert (engine.dark_counts() >= 1).all()

    def test_counts_stay_non_negative(self):
        engine = build(dark=(2, 2, 2), light=(1, 1, 1))
        for _ in range(5000):
            engine.step()
        assert (engine.dark_counts() >= 0).all()
        assert (engine.light_counts() >= 0).all()


class TestEventDriven:
    def test_run_reaches_exact_horizon(self):
        engine = build(dark=(20, 20, 20))
        engine.run(12_345)
        assert engine.time == 12_345

    def test_run_negative_rejected(self):
        with pytest.raises(ValueError):
            build().run(-5)

    def test_run_conserves_population(self):
        engine = build(dark=(40, 40, 40))
        engine.run(100_000)
        assert engine.n == 120

    def test_run_preserves_dark_invariant(self):
        engine = build(dark=(1, 1, 58))
        engine.run(200_000)
        assert (engine.dark_counts() >= 1).all()

    def test_seed_reproducibility(self):
        a = build(dark=(30, 30, 30), seed=3)
        b = build(dark=(30, 30, 30), seed=3)
        a.run(50_000)
        b.run(50_000)
        np.testing.assert_array_equal(a.dark_counts(), b.dark_counts())
        np.testing.assert_array_equal(a.light_counts(), b.light_counts())

    def test_converges_to_fair_shares(self):
        weights = WeightTable([1.0, 2.0, 3.0])
        engine = AggregateSimulation(
            weights, dark_counts=[598, 1, 1], rng=42
        )
        engine.run(2_000_000)
        shares = engine.colour_counts() / engine.n
        np.testing.assert_allclose(
            shares, weights.fair_shares(), atol=0.08
        )

    def test_run_until_hits_predicate(self):
        engine = build(dark=(58, 1, 1), seed=9)

        def balancedish(e):
            counts = e.colour_counts()
            return counts.max() - counts.min() < 30

        hit = engine.run_until(balancedish, max_steps=500_000)
        assert hit is not None
        assert hit == engine.time

    def test_run_until_respects_max_steps(self):
        engine = build(dark=(20, 20, 20), seed=1)
        hit = engine.run_until(lambda e: False, max_steps=1000)
        assert hit is None
        assert engine.time == 1000

    def test_run_until_immediate_hit(self):
        engine = build(dark=(20, 20, 20))
        assert engine.run_until(lambda e: True, max_steps=10) == 0


class TestAdversaryHooks:
    def test_add_agents(self):
        engine = build(dark=(5, 5, 5))
        engine.add_agents(1, 10, dark=True)
        assert engine.dark_counts()[1] == 15
        assert engine.n == 25

    def test_add_agents_light(self):
        engine = build()
        engine.add_agents(0, 3, dark=False)
        assert engine.light_counts()[0] == 3

    def test_add_agents_unknown_colour(self):
        with pytest.raises(ValueError):
            build().add_agents(7, 1)

    def test_add_colour_extends_everything(self):
        weights = WeightTable([1.0, 2.0, 3.0])
        engine = AggregateSimulation(weights, dark_counts=[5, 5, 5], rng=0)
        colour = engine.add_colour(4.0, count=2)
        assert colour == 3
        assert engine.k == 4
        assert weights.k == 4
        assert engine.dark_counts()[3] == 2
        assert engine._lighten[3] == pytest.approx(0.25)

    def test_recolour_moves_all_mass(self):
        engine = build(dark=(5, 5, 5), light=(2, 0, 0))
        engine.recolour(0, 2)
        np.testing.assert_array_equal(engine.colour_counts(), [0, 5, 12])

    def test_recolour_same_colour_noop(self):
        engine = build(dark=(5, 5, 5))
        engine.recolour(1, 1)
        np.testing.assert_array_equal(engine.dark_counts(), [5, 5, 5])

    def test_recolour_validates_colours(self):
        with pytest.raises(ValueError):
            build().recolour(0, 9)


class TestPickWeighted:
    def test_deterministic_single_mass(self):
        rng = make_rng(0)
        assert _pick_weighted([0.0, 5.0, 0.0], rng) == 1

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            _pick_weighted([0.0, 0.0], make_rng(0))

    def test_distribution_roughly_proportional(self):
        rng = make_rng(1)
        draws = [_pick_weighted([1.0, 3.0], rng) for _ in range(20_000)]
        share = sum(draws) / len(draws)
        assert share == pytest.approx(0.75, abs=0.02)
