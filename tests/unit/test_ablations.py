"""Unit tests for the ablated protocol variants."""

import pytest

from repro.core.ablations import EagerRecolouring, UnweightedLightening
from repro.core.state import DARK, LIGHT, AgentState, dark, light
from repro.core.weights import WeightTable


class FixedRng:
    def __init__(self, value):
        self.value = value

    def random(self):
        return self.value


@pytest.fixture
def weights():
    return WeightTable([1.0, 3.0])


class TestUnweightedLightening:
    def test_same_dark_colour_always_lightens(self, weights, rng):
        protocol = UnweightedLightening(weights)
        # Even the heavy colour lightens deterministically.
        new = protocol.transition(dark(1), [dark(1)], rng)
        assert new == AgentState(1, LIGHT)

    def test_light_adopts_dark(self, weights, rng):
        protocol = UnweightedLightening(weights)
        assert protocol.transition(light(0), [dark(1)], rng) == dark(1)

    def test_other_cases_noop(self, weights, rng):
        protocol = UnweightedLightening(weights)
        assert protocol.transition(dark(0), [dark(1)], rng) == dark(0)
        assert protocol.transition(dark(0), [light(0)], rng) == dark(0)
        assert protocol.transition(light(0), [light(1)], rng) == light(0)

    def test_initial_state_dark(self, weights):
        assert UnweightedLightening(weights).initial_state(1) == dark(1)


class TestEagerRecolouring:
    def test_arity_two(self, weights):
        assert EagerRecolouring(weights).arity == 2

    def test_same_colour_coin_success_adopts_second_sample(self, weights):
        protocol = EagerRecolouring(weights)
        new = protocol.transition(
            dark(1), [dark(1), dark(0)], FixedRng(0.2)
        )
        assert new == AgentState(0, DARK)

    def test_same_colour_coin_failure_keeps(self, weights):
        protocol = EagerRecolouring(weights)
        state = dark(1)
        assert (
            protocol.transition(state, [dark(1), dark(0)], FixedRng(0.9))
            == state
        )

    def test_unit_weight_always_switches(self, weights):
        protocol = EagerRecolouring(weights)
        new = protocol.transition(
            dark(0), [dark(0), dark(1)], FixedRng(0.999999)
        )
        # weight 1 -> probability 1; FixedRng below 1.0 always succeeds.
        assert new.colour == 1

    def test_different_colour_noop(self, weights, rng):
        protocol = EagerRecolouring(weights)
        state = dark(0)
        assert protocol.transition(state, [dark(1), dark(1)], rng) == state
