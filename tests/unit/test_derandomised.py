"""Unit tests for the derandomised multi-shade protocol (Sec 1.2)."""

import pytest

from repro.core.derandomised import DerandomisedDiversification
from repro.core.state import AgentState
from repro.core.weights import WeightTable


@pytest.fixture
def protocol():
    return DerandomisedDiversification(WeightTable([1.0, 2.0, 3.0]))


class TestConstruction:
    def test_rejects_fractional_weights(self):
        with pytest.raises(ValueError):
            DerandomisedDiversification(WeightTable([1.0, 2.5]))

    def test_accepts_integral_floats(self):
        DerandomisedDiversification(WeightTable([1.0, 4.0]))


class TestInitialState:
    def test_starts_at_full_shade(self, protocol):
        assert protocol.initial_state(2) == AgentState(2, 3)
        assert protocol.initial_state(0) == AgentState(0, 1)

    def test_unknown_colour_rejected(self, protocol):
        with pytest.raises(ValueError):
            protocol.initial_state(9)


class TestTransitions:
    def test_same_colour_positive_shades_decrement(self, protocol, rng):
        u = AgentState(2, 3)
        v = AgentState(2, 1)
        assert protocol.transition(u, [v], rng) == AgentState(2, 2)

    def test_decrement_reaches_zero(self, protocol, rng):
        u = AgentState(1, 1)
        v = AgentState(1, 2)
        assert protocol.transition(u, [v], rng) == AgentState(1, 0)

    def test_shade_zero_adopts_at_full_shade(self, protocol, rng):
        u = AgentState(0, 0)
        v = AgentState(2, 1)
        assert protocol.transition(u, [v], rng) == AgentState(2, 3)

    def test_shade_zero_adopting_own_colour_recommits(self, protocol, rng):
        u = AgentState(2, 0)
        v = AgentState(2, 2)
        assert protocol.transition(u, [v], rng) == AgentState(2, 3)

    def test_both_shade_zero_noop(self, protocol, rng):
        u = AgentState(0, 0)
        v = AgentState(1, 0)
        assert protocol.transition(u, [v], rng) == u

    def test_positive_shade_meets_zero_noop(self, protocol, rng):
        u = AgentState(1, 2)
        v = AgentState(1, 0)
        assert protocol.transition(u, [v], rng) == u

    def test_different_colours_positive_shades_noop(self, protocol, rng):
        u = AgentState(0, 1)
        v = AgentState(2, 3)
        assert protocol.transition(u, [v], rng) == u

    def test_no_randomness_consumed(self, protocol):
        """The protocol must be deterministic: rng is never touched."""

        class ExplodingRng:
            def random(self):  # pragma: no cover - should not run
                raise AssertionError("derandomised protocol used rng")

        rng = ExplodingRng()
        protocol.transition(AgentState(2, 3), [AgentState(2, 1)], rng)
        protocol.transition(AgentState(0, 0), [AgentState(1, 2)], rng)
        protocol.transition(AgentState(0, 1), [AgentState(1, 1)], rng)

    def test_max_shade_per_colour(self, protocol):
        assert protocol.max_shade(0) == 1
        assert protocol.max_shade(1) == 2
        assert protocol.max_shade(2) == 3

    def test_full_lighten_cycle_length(self, protocol, rng):
        """Colour 2 (weight 3) needs exactly 3 same-colour meetings to
        reach shade 0."""
        state = protocol.initial_state(2)
        partner = AgentState(2, 3)
        meetings = 0
        while state.shade > 0:
            state = protocol.transition(state, [partner], rng)
            meetings += 1
        assert meetings == 3
