"""Unit tests for gambler's ruin and biased-walk helpers (Thm A.1)."""

import numpy as np
import pytest

from repro.analysis.random_walks import (
    escape_probability_bound,
    gamblers_ruin,
    simulate_biased_walk,
)


class TestGamblersRuin:
    def test_probabilities_sum_to_one(self):
        result = gamblers_ruin(0.6, b=20, s=7)
        assert result.hit_top + result.hit_bottom == pytest.approx(1.0)

    def test_boundary_starts(self):
        assert gamblers_ruin(0.6, 10, 0).hit_bottom == 1.0
        assert gamblers_ruin(0.6, 10, 10).hit_top == 1.0

    def test_symmetric_case(self):
        result = gamblers_ruin(0.5, b=10, s=3)
        assert result.hit_top == pytest.approx(0.3)
        assert result.expected_time == pytest.approx(21.0)

    def test_formula_against_feller(self):
        # P(hit b) = ((q/p)^s - 1)/((q/p)^b - 1).
        p, b, s = 0.6, 10, 4
        ratio = 0.4 / 0.6
        expected = (ratio**s - 1) / (ratio**b - 1)
        assert gamblers_ruin(p, b, s).hit_top == pytest.approx(expected)

    def test_upward_bias_favours_top(self):
        biased = gamblers_ruin(0.7, 30, 15).hit_top
        fair = gamblers_ruin(0.5, 30, 15).hit_top
        assert biased > fair

    def test_strong_downward_bias_overflow_guard(self):
        result = gamblers_ruin(0.01, b=10_000, s=5_000)
        assert result.hit_top == pytest.approx(0.0, abs=1e-12)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            gamblers_ruin(0.0, 10, 5)
        with pytest.raises(ValueError):
            gamblers_ruin(1.0, 10, 5)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            gamblers_ruin(0.6, 0, 0)
        with pytest.raises(ValueError):
            gamblers_ruin(0.6, 10, 11)

    def test_monotone_in_start(self):
        values = [gamblers_ruin(0.55, 20, s).hit_top for s in range(21)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


class TestSimulatedWalk:
    def test_absorbs_at_boundary(self):
        outcome = simulate_biased_walk(0.7, b=30, s=15, rng=0)
        assert outcome.absorbed_at in (0, 30)
        assert outcome.steps >= 15  # needs at least distance steps

    def test_empirical_matches_theory(self):
        p, b, s = 0.6, 12, 6
        expected = gamblers_ruin(p, b, s).hit_top
        rng = np.random.default_rng(3)
        hits = sum(
            simulate_biased_walk(p, b, s, rng=rng).absorbed_at == b
            for _ in range(800)
        )
        assert hits / 800 == pytest.approx(expected, abs=0.05)

    def test_start_at_boundary_returns_immediately(self):
        outcome = simulate_biased_walk(0.6, b=10, s=0, rng=0)
        assert outcome.absorbed_at == 0
        assert outcome.steps == 0

    def test_invalid_start_rejected(self):
        with pytest.raises(ValueError):
            simulate_biased_walk(0.6, b=10, s=11, rng=0)

    def test_max_steps_enforced(self):
        with pytest.raises(RuntimeError):
            simulate_biased_walk(0.5, b=10**6, s=500_000, rng=0,
                                 max_steps=100)


class TestEscapeBound:
    def test_decreases_with_n(self):
        assert escape_probability_bound(0.1, 10_000, 6.0) < (
            escape_probability_bound(0.1, 100, 6.0)
        )

    def test_in_unit_interval(self):
        value = escape_probability_bound(0.05, 1000, 4.0)
        assert 0.0 < value < 1.0

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            escape_probability_bound(0.0, 100, 6.0)
