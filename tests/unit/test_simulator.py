"""Unit tests for the agent-level Simulation engine."""

import numpy as np
import pytest

from repro.core.diversification import Diversification
from repro.core.state import dark
from repro.core.weights import WeightTable
from repro.engine.observers import Observer
from repro.engine.population import Population
from repro.engine.scheduler import RoundRobinScheduler
from repro.engine.simulator import Simulation
from repro.topology import CycleGraph


def build_simulation(n=10, k=2, seed=0, **kwargs):
    weights = WeightTable.uniform(k)
    protocol = Diversification(weights)
    colours = [i % k for i in range(n)]
    population = Population.from_colours(colours, protocol, k=k)
    return Simulation(protocol, population, rng=seed, **kwargs)


class RecordingObserver(Observer):
    def __init__(self):
        self.changes = []
        self.started = 0
        self.ended = 0

    def on_start(self, simulation):
        self.started += 1

    def on_change(self, simulation, agent, old, new):
        self.changes.append((simulation.time, agent, old, new))

    def on_end(self, simulation):
        self.ended += 1


class TestConstruction:
    def test_requires_two_agents(self):
        weights = WeightTable.uniform(1)
        protocol = Diversification(weights)
        population = Population.from_colours([0], protocol)
        with pytest.raises(ValueError):
            Simulation(protocol, population)

    def test_topology_size_must_match(self):
        with pytest.raises(ValueError):
            build_simulation(n=10, topology=CycleGraph(5))


class TestStepping:
    def test_time_advances_per_step(self):
        simulation = build_simulation()
        simulation.step()
        simulation.step()
        assert simulation.time == 2

    def test_run_executes_exact_steps(self):
        simulation = build_simulation()
        simulation.run(1234)
        assert simulation.time == 1234

    def test_run_negative_rejected(self):
        with pytest.raises(ValueError):
            build_simulation().run(-1)

    def test_population_size_conserved(self):
        simulation = build_simulation(n=20, k=3)
        simulation.run(5000)
        assert simulation.population.colour_counts().sum() == 20

    def test_seed_reproducibility(self):
        a = build_simulation(n=16, k=2, seed=11)
        b = build_simulation(n=16, k=2, seed=11)
        a.run(4000)
        b.run(4000)
        np.testing.assert_array_equal(
            a.population.colour_counts(), b.population.colour_counts()
        )
        np.testing.assert_array_equal(
            a.population.dark_counts(), b.population.dark_counts()
        )

    def test_changes_counter_matches_observer(self):
        observer = RecordingObserver()
        simulation = build_simulation(n=12, k=2)
        simulation.add_observer(observer)
        simulation.run(3000)
        assert simulation.changes == len(observer.changes)


class TestSeedingContract:
    """The documented contract: randomness is consumed in fixed blocks
    anchored to the executed-step count, so trajectories depend only on
    the seed and the total number of steps — not on how those steps
    were partitioned into step()/run() calls."""

    def _counts(self, simulation):
        return (
            simulation.population.colour_counts(),
            simulation.population.dark_counts(),
        )

    def test_step_equals_run(self):
        a = build_simulation(n=16, k=2, seed=11)
        b = build_simulation(n=16, k=2, seed=11)
        for _ in range(300):
            a.step()
        b.run(300)
        for left, right in zip(self._counts(a), self._counts(b)):
            np.testing.assert_array_equal(left, right)
        assert a.time == b.time == 300
        assert a.changes == b.changes

    def test_run_chunking_invariance(self):
        whole = build_simulation(n=16, k=3, seed=5)
        whole.run(5000)
        chunked = build_simulation(n=16, k=3, seed=5)
        # Uneven chunks crossing the internal 4096-step block boundary.
        for chunk in (1, 999, 3000, 96, 1, 903):
            chunked.run(chunk)
        assert chunked.time == 5000
        for left, right in zip(
            self._counts(whole), self._counts(chunked)
        ):
            np.testing.assert_array_equal(left, right)

    def test_step_equals_run_on_topology(self):
        from repro.topology import CycleGraph

        weights = WeightTable.uniform(2)
        protocol = Diversification(weights)

        def make():
            population = Population.from_colours(
                [i % 2 for i in range(8)], protocol, k=2
            )
            return Simulation(
                protocol, population, topology=CycleGraph(8), rng=13
            )

        a, b = make(), make()
        for _ in range(200):
            a.step()
        b.run(200)
        for left, right in zip(self._counts(a), self._counts(b)):
            np.testing.assert_array_equal(left, right)


class TestObserverLifecycle:
    def test_hooks_called(self):
        observer = RecordingObserver()
        simulation = build_simulation(n=8, k=2, observers=[observer])
        simulation.run(500)
        assert observer.started == 1
        assert observer.ended == 1
        assert observer.changes  # unit weights change often

    def test_change_events_are_real_changes(self):
        observer = RecordingObserver()
        simulation = build_simulation(n=8, k=2, observers=[observer])
        simulation.run(500)
        for _, _, old, new in observer.changes:
            assert old != new


class TestSampling:
    def test_never_samples_self_complete_graph(self):
        """On the complete graph with n=2, the partner is always the
        other agent — detectable because a dark pair of the same colour
        with weight 1 must keep toggling."""
        weights = WeightTable.uniform(1)  # one colour, weight 1
        protocol = Diversification(weights)
        population = Population.from_colours([0, 0], protocol)
        simulation = Simulation(protocol, population, rng=2)
        simulation.run(100)
        # With one colour the counts stay [2] and the process remains
        # live (self-sampling would freeze the lone dark pair rule).
        assert population.colour_counts()[0] == 2
        assert simulation.changes > 0

    def test_topology_restricts_partners(self):
        """On a cycle, agent 0 only meets agents 1 and n-1."""
        seen = set()

        class PartnerSpy(Observer):
            def on_change(self, simulation, agent, old, new):
                pass

        n = 8
        weights = WeightTable.uniform(2)
        protocol = Diversification(weights)

        class SpyingProtocol(Diversification):
            def transition(self, u, sampled, rng):
                seen.add(sampled[0].colour)
                return u  # never change; we only spy

        # Colour-code the cycle: agent i has colour i % 2 -> neighbours
        # of an even agent are odd. Use k=n colours to identify agents.
        weights_n = WeightTable.uniform(n)
        spy = SpyingProtocol(weights_n)
        population = Population.from_colours(list(range(n)), spy, k=n)
        scheduler = RoundRobinScheduler()  # only agent 0 first
        simulation = Simulation(
            spy, population, topology=CycleGraph(n), rng=0,
            scheduler=scheduler,
        )
        for _ in range(50):
            simulation.step()  # round-robin: agents 0..n-1 cyclically
        # Agent 0's samples were among {1, n-1}; others likewise.
        # All sampled colours must be cycle-neighbours of the initiator.
        assert seen  # sanity
        for colour in seen:
            assert 0 <= colour < n

    def test_round_robin_schedules_in_order(self):
        order = []

        class OrderSpy(Diversification):
            def transition(self, u, sampled, rng):
                order.append(u.colour)
                return u

        n = 6
        weights = WeightTable.uniform(n)
        spy = OrderSpy(weights)
        population = Population.from_colours(list(range(n)), spy, k=n)
        simulation = Simulation(
            spy, population, scheduler=RoundRobinScheduler(), rng=0
        )
        simulation.run(6)
        assert order == [0, 1, 2, 3, 4, 5]
