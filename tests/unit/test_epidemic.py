"""Unit tests for the SIS epidemic baseline."""

import numpy as np
import pytest

from repro.baselines.epidemic import SISEpidemic, infected_count
from repro.core.state import dark
from repro.engine.population import Population
from repro.engine.simulator import Simulation


class FixedRng:
    def __init__(self, value):
        self.value = value

    def random(self):
        return self.value


class TestConstruction:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            SISEpidemic(transmission=1.5, recovery=0.5)
        with pytest.raises(ValueError):
            SISEpidemic(transmission=0.5, recovery=-0.1)

    def test_reproduction_ratio(self):
        assert SISEpidemic(0.6, 0.2).reproduction_ratio == pytest.approx(3.0)
        assert SISEpidemic(0.5, 0.0).reproduction_ratio == float("inf")

    def test_states_limited_to_two(self):
        protocol = SISEpidemic(0.5, 0.5)
        with pytest.raises(ValueError):
            protocol.initial_state(2)


class TestTransitions:
    def test_infected_recovers_on_coin(self):
        protocol = SISEpidemic(transmission=1.0, recovery=0.3)
        new = protocol.transition(dark(1), [dark(0)], FixedRng(0.2))
        assert new.colour == 0

    def test_infected_stays_on_coin_failure(self):
        protocol = SISEpidemic(transmission=1.0, recovery=0.3)
        state = dark(1)
        assert protocol.transition(state, [dark(1)], FixedRng(0.9)) is state

    def test_susceptible_infected_by_contact(self):
        protocol = SISEpidemic(transmission=0.7, recovery=0.0)
        new = protocol.transition(dark(0), [dark(1)], FixedRng(0.5))
        assert new.colour == 1

    def test_susceptible_safe_from_susceptible(self):
        protocol = SISEpidemic(transmission=1.0, recovery=0.0)
        state = dark(0)
        assert protocol.transition(state, [dark(0)], FixedRng(0.0)) is state


class TestDynamics:
    def run_epidemic(self, transmission, recovery, seed, n=100,
                     infected=10, steps=120_000):
        protocol = SISEpidemic(transmission, recovery)
        colours = [1] * infected + [0] * (n - infected)
        population = Population.from_colours(colours, protocol, k=2)
        Simulation(protocol, population, rng=seed).run(steps)
        return int(population.colour_counts()[1])

    def test_subcritical_epidemic_dies(self):
        """transmission << recovery: infection goes extinct — the
        canonical non-sustainable dynamic."""
        extinctions = sum(
            self.run_epidemic(0.05, 0.8, seed) == 0 for seed in range(5)
        )
        assert extinctions == 5

    def test_supercritical_epidemic_persists(self):
        survivors = [
            self.run_epidemic(0.9, 0.05, seed) for seed in range(5)
        ]
        assert all(count > 20 for count in survivors)

    def test_extinction_is_absorbing(self):
        protocol = SISEpidemic(0.9, 0.5)
        population = Population.from_colours([0] * 20, protocol, k=2)
        simulation = Simulation(protocol, population, rng=0)
        simulation.run(10_000)
        assert population.colour_counts()[1] == 0


class TestInfectedCount:
    def test_reads_second_entry(self):
        assert infected_count(np.array([7, 3])) == 3

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            infected_count(np.array([1, 2, 3]))
