"""Unit tests for the Diversification transition rule (Eq. (2))."""

import numpy as np
import pytest

from repro.core.diversification import Diversification
from repro.core.state import DARK, LIGHT, AgentState, dark, light
from repro.core.weights import WeightTable


class FixedRng:
    """Deterministic stand-in for numpy Generator (random() only)."""

    def __init__(self, value: float):
        self.value = value

    def random(self):
        return self.value


@pytest.fixture
def protocol(skewed_weights):
    return Diversification(skewed_weights)


class TestInitialState:
    def test_agents_start_dark(self, protocol):
        assert protocol.initial_state(1) == AgentState(1, DARK)

    def test_unknown_colour_rejected(self, protocol):
        with pytest.raises(ValueError):
            protocol.initial_state(3)

    def test_negative_colour_rejected(self, protocol):
        with pytest.raises(ValueError):
            protocol.initial_state(-1)


class TestRuleOne:
    """Light observer + dark sample -> adopt colour, become dark."""

    def test_light_adopts_dark(self, protocol, rng):
        new = protocol.transition(light(0), [dark(2)], rng)
        assert new == AgentState(2, DARK)

    def test_light_adopts_dark_same_colour(self, protocol, rng):
        # Adopting the same colour still flips the shade to dark.
        new = protocol.transition(light(1), [dark(1)], rng)
        assert new == AgentState(1, DARK)

    def test_light_ignores_light(self, protocol, rng):
        state = light(0)
        assert protocol.transition(state, [light(2)], rng) == state


class TestRuleTwo:
    """Dark + same dark colour -> lighten with probability 1/w_i."""

    def test_unit_weight_always_lightens(self, protocol):
        # Colour 0 has weight 1 -> deterministic lightening.
        new = protocol.transition(dark(0), [dark(0)], FixedRng(0.999))
        assert new == AgentState(0, LIGHT)

    def test_heavy_weight_coin_success(self, protocol):
        # Colour 2 has weight 3: lighten iff uniform < 1/3.
        new = protocol.transition(dark(2), [dark(2)], FixedRng(0.2))
        assert new == AgentState(2, LIGHT)

    def test_heavy_weight_coin_failure(self, protocol):
        state = dark(2)
        assert protocol.transition(state, [dark(2)], FixedRng(0.5)) == state

    def test_dark_different_colour_noop(self, protocol, rng):
        state = dark(0)
        assert protocol.transition(state, [dark(1)], rng) == state

    def test_dark_ignores_light(self, protocol, rng):
        state = dark(0)
        assert protocol.transition(state, [light(0)], rng) == state


class TestExhaustiveness:
    """Every (shade_u, shade_v, same/different colour) case is covered
    by exactly one of the three Eq. (2) branches."""

    @pytest.mark.parametrize("u_shade", [LIGHT, DARK])
    @pytest.mark.parametrize("v_shade", [LIGHT, DARK])
    @pytest.mark.parametrize("same_colour", [True, False])
    def test_all_cases_return_valid_state(
        self, protocol, u_shade, v_shade, same_colour
    ):
        u = AgentState(0, u_shade)
        v = AgentState(0 if same_colour else 1, v_shade)
        new = protocol.transition(u, [v], FixedRng(0.0))
        assert 0 <= new.colour < 3
        assert new.shade in (LIGHT, DARK)
        # A colour change can only happen via rule one.
        if new.colour != u.colour:
            assert u.shade == LIGHT and v.shade == DARK

    def test_lone_dark_agent_never_changes(self, protocol):
        """The sustainability invariant at the rule level: a dark agent
        only moves when meeting its own colour dark."""
        u = dark(1)
        for v in (light(0), light(1), light(2), dark(0), dark(2)):
            assert protocol.transition(u, [v], FixedRng(0.0)) == u


class TestStatistics:
    def test_lighten_frequency_matches_inverse_weight(self, skewed_weights):
        protocol = Diversification(skewed_weights)
        rng = np.random.default_rng(7)
        trials = 20_000
        lightened = sum(
            protocol.transition(dark(2), [dark(2)], rng).shade == LIGHT
            for _ in range(trials)
        )
        assert lightened / trials == pytest.approx(1 / 3, abs=0.02)

    def test_weight_table_is_shared_not_copied(self, skewed_weights):
        protocol = Diversification(skewed_weights)
        skewed_weights.add_colour(4.0)
        # The protocol sees the new colour immediately.
        assert protocol.initial_state(3) == AgentState(3, DARK)
