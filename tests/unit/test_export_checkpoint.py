"""The JSON+NPZ checkpoint store (``repro-ckpt-store/v1``).

A saved engine snapshot must come back exactly — every array with its
dtype and shape, every scalar, arbitrarily nested — with no pickle
anywhere in the round trip.
"""

import json

import numpy as np
import pytest

from repro.core.weights import WeightTable
from repro.engine.batched import BatchedAggregateSimulation
from repro.experiments.export import (
    CKPT_STORE_FORMAT,
    load_checkpoint,
    save_checkpoint,
)


def tree_equal(a, b, path=""):
    assert type(a) is type(b), f"{path}: {type(a)} vs {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), path
        for key in a:
            tree_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, list):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            tree_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, path
        assert a.shape == b.shape, path
        assert np.array_equal(a, b), path
    else:
        assert a == b, path


class TestRoundTrip:
    def test_nested_payload(self, tmp_path):
        payload = {
            "format": "repro-ckpt/v1",
            "engine": "Demo",
            "time": 123,
            "scale": 0.5,
            "label": "hello",
            "flag": True,
            "nothing": None,
            "counts": np.arange(6, dtype=np.int64).reshape(2, 3),
            "weights": np.array([1.0, 2.5]),
            "packed": np.array([[1, 2]], dtype=np.uint64),
            "nested": {
                "streams": {"pool": np.zeros((2, 4), dtype=np.float64)},
                "values": [np.array([7], dtype=np.int32), {"x": 1}],
            },
        }
        json_path, npz_path = save_checkpoint(payload, tmp_path / "snap")
        assert json_path.suffix == ".json"
        assert npz_path.suffix == ".npz"
        tree_equal(load_checkpoint(tmp_path / "snap"), payload)

    def test_array_free_payload_still_writes_npz(self, tmp_path):
        payload = {"format": "repro-ckpt/v1", "engine": "Demo", "time": 1}
        save_checkpoint(payload, tmp_path / "plain")
        tree_equal(load_checkpoint(tmp_path / "plain"), payload)

    def test_suffix_normalisation(self, tmp_path):
        payload = {"format": "repro-ckpt/v1", "engine": "Demo"}
        for name in ("a", "b.json", "c.npz"):
            save_checkpoint(payload, tmp_path / name)
        assert (tmp_path / "a.json").exists() and (tmp_path / "a.npz").exists()
        assert (tmp_path / "b.json").exists() and (tmp_path / "b.npz").exists()
        assert (tmp_path / "c.json").exists() and (tmp_path / "c.npz").exists()
        tree_equal(load_checkpoint(tmp_path / "b"), payload)

    def test_engine_snapshot_round_trip(self, tmp_path):
        """End to end: snapshot → disk → restore is bit-identical,
        including the per-row stream draws."""
        engine = BatchedAggregateSimulation(
            WeightTable([1.0, 2.0, 3.0]), [30, 20, 10],
            replications=3, rng=21,
        )
        engine.run(250)
        save_checkpoint(engine.snapshot(), tmp_path / "mid")
        expected_counts = [engine.dark_counts(), engine.light_counts()]
        engine.run(250)
        final = [engine.dark_counts(), engine.light_counts()]

        twin = BatchedAggregateSimulation(
            WeightTable([1.0, 2.0, 3.0]), [30, 20, 10],
            replications=3, rng=0,
        )
        twin.restore(load_checkpoint(tmp_path / "mid"))
        assert np.array_equal(twin.dark_counts(), expected_counts[0])
        assert np.array_equal(twin.light_counts(), expected_counts[1])
        twin.run(250)
        assert np.array_equal(twin.dark_counts(), final[0])
        assert np.array_equal(twin.light_counts(), final[1])
        assert engine.rng.random() == twin.rng.random()

    def test_no_pickle_in_either_file(self, tmp_path):
        payload = {
            "format": "repro-ckpt/v1",
            "engine": "Demo",
            "counts": np.arange(4),
        }
        json_path, npz_path = save_checkpoint(payload, tmp_path / "s")
        json.loads(json_path.read_text())  # valid plain JSON
        with np.load(npz_path, allow_pickle=False) as archive:
            assert "counts" in archive


class TestValidation:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        np.savez(tmp_path / "bad.npz")
        with pytest.raises(ValueError, match=CKPT_STORE_FORMAT):
            load_checkpoint(tmp_path / "bad")

    def test_missing_array_detected(self, tmp_path):
        payload = {
            "format": "repro-ckpt/v1",
            "engine": "Demo",
            "counts": np.arange(4),
        }
        json_path, npz_path = save_checkpoint(payload, tmp_path / "s")
        np.savez(npz_path)  # clobber: drop the arrays
        with pytest.raises(ValueError, match="counts"):
            load_checkpoint(tmp_path / "s")

    def test_missing_npz_errors(self, tmp_path):
        payload = {
            "format": "repro-ckpt/v1",
            "engine": "Demo",
            "counts": np.arange(4),
        }
        _, npz_path = save_checkpoint(payload, tmp_path / "s")
        npz_path.unlink()
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "s")
