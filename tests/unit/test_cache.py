"""Unit tests for the content-addressed shard result cache: the
on-disk store, key composition and the hit/miss partition helper."""

import json

import pytest

from repro.engine.backend import Backend, DtypeTable
from repro.engine.backend import np as backend_np
from repro.experiments.cache import (
    CACHE_FORMAT,
    ShardCache,
    backend_fingerprint,
    lookup_shards,
    measurement_fingerprint,
    package_fingerprint,
    resolve_cache,
    shard_key,
    verify_cache,
)
from repro.experiments.pipeline import ScenarioSpec, Shard, plan

np = backend_np


def _measure(params, rng):
    return {"value": params["a"] + float(rng.random())}


@pytest.fixture
def spec():
    return ScenarioSpec(
        name="cache-unit",
        measure=_measure,
        grid={"a": (1, 2)},
        replications=2,
        base_seed=11,
    )


class TestShardCacheStore:
    def test_put_get_round_trip(self, spec, tmp_path):
        store = ShardCache(tmp_path)
        shard = plan(spec).shards[0]
        key = shard_key(spec, shard)
        assert store.get(key) is None
        store.put(key, {"value": 1.5}, 0.25, experiment=spec.name)
        entry = store.get(key)
        assert entry == {"value": {"value": 1.5}, "seconds": 0.25}
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.stores == 1

    def test_layout_is_two_level_fanout(self, spec, tmp_path):
        store = ShardCache(tmp_path)
        shard = plan(spec).shards[0]
        key = shard_key(spec, shard)
        path = store.put(key, {"v": 1}, 0.0)
        assert path == tmp_path / key[:2] / f"{key}.json"
        assert path.exists()

    def test_corrupt_entry_is_a_miss_and_quarantined(self, spec,
                                                     tmp_path):
        store = ShardCache(tmp_path)
        shard = plan(spec).shards[0]
        key = shard_key(spec, shard)
        store.put(key, {"v": 1}, 0.0)
        store.path_for(key).write_text("{ not json")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.get(key) is None
        # The bad file moved aside: the slot is free and re-storable.
        assert not store.path_for(key).exists()
        assert (tmp_path / "quarantine" / f"{key}.json").exists()
        assert store.stats.quarantined == 1
        store.put(key, {"v": 1}, 0.0)
        assert store.get(key)["value"] == {"v": 1}

    def test_foreign_format_or_key_mismatch_is_a_miss(
        self, spec, tmp_path
    ):
        store = ShardCache(tmp_path)
        shard = plan(spec).shards[0]
        key = shard_key(spec, shard)
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"format": "nope", "key": key}))
        with pytest.warns(RuntimeWarning, match="foreign format"):
            assert store.get(key) is None
        path.write_text(
            json.dumps(
                {"format": CACHE_FORMAT, "key": "other", "value": {}}
            )
        )
        with pytest.warns(RuntimeWarning, match="key mismatch"):
            assert store.get(key) is None
        # Collision-safe quarantine names: both bad files survive.
        quarantined = sorted(
            entry.name for entry in (tmp_path / "quarantine").iterdir()
        )
        assert quarantined == [f"{key}.json", f"{key}.json.1"]

    def test_missing_value_payload_is_a_miss(self, spec, tmp_path):
        store = ShardCache(tmp_path)
        shard = plan(spec).shards[0]
        key = shard_key(spec, shard)
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"format": CACHE_FORMAT, "key": key}))
        with pytest.warns(RuntimeWarning, match="value"):
            assert store.get(key) is None

    def test_missing_file_is_a_plain_miss_without_warning(
        self, spec, tmp_path
    ):
        import warnings as warnings_module

        store = ShardCache(tmp_path)
        shard = plan(spec).shards[0]
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert store.get(shard_key(spec, shard)) is None
        assert store.stats.quarantined == 0

    def test_entry_is_self_describing(self, spec, tmp_path):
        store = ShardCache(tmp_path)
        shard = plan(spec).shards[0]
        key = shard_key(spec, shard)
        store.put(key, {"v": 2}, 1.0, experiment="cache-unit")
        doc = json.loads(store.path_for(key).read_text())
        assert doc["format"] == CACHE_FORMAT
        assert doc["key"] == key
        assert doc["experiment"] == "cache-unit"

    def test_resolve_cache(self, tmp_path):
        assert resolve_cache(None) is None
        store = ShardCache(tmp_path)
        assert resolve_cache(store) is store
        wrapped = resolve_cache(tmp_path)
        assert isinstance(wrapped, ShardCache)
        assert wrapped.directory == tmp_path


class TestShardKey:
    def test_stable_across_plan_expansions(self, spec):
        first = plan(spec).shards[1]
        second = plan(spec).shards[1]
        assert shard_key(spec, first) == shard_key(spec, second)

    def test_distinct_shards_get_distinct_keys(self, spec):
        shards = plan(spec).shards
        keys = {shard_key(spec, shard) for shard in shards}
        assert len(keys) == len(shards)

    def test_mode_separates_key_spaces(self, spec):
        shard = plan(spec).shards[0]
        assert shard_key(spec, shard) != shard_key(
            spec, shard, mode="fused:aggregate"
        )

    def test_code_version_invalidates(self, spec):
        shard = plan(spec).shards[0]
        a = shard_key(spec, shard, code_version="v1")
        b = shard_key(spec, shard, code_version="v2")
        default = shard_key(spec, shard)
        assert len({a, b, default}) == 3

    def test_dtype_table_invalidates(self, spec):
        shard = plan(spec).shards[0]
        narrow = Backend(
            "numpy",
            np,
            DtypeTable(np.int32, np.float32, np.uint32, np.bool_),
        )
        assert shard_key(spec, shard) != shard_key(
            spec, shard, backend=narrow
        )

    def test_seed_is_part_of_the_address(self, spec):
        shard = plan(spec).shards[0]
        reseeded = Shard(
            index=shard.index,
            cell=shard.cell,
            replication=shard.replication,
            params=shard.params,
            seed=np.random.SeedSequence(424242),
        )
        assert shard_key(spec, shard) != shard_key(spec, reseeded)


class TestFingerprints:
    def test_package_fingerprint_is_cached_and_hexdigest(self):
        first = package_fingerprint()
        assert first == package_fingerprint()
        assert len(first) == 64
        int(first, 16)

    def test_measurement_fingerprint_names_the_callable(self):
        doc = measurement_fingerprint(_measure)
        assert doc["ref"].endswith(":_measure")
        assert doc["ref"].startswith(_measure.__module__)
        assert doc["source"] is not None

    def test_backend_fingerprint_reports_dtypes(self):
        doc = backend_fingerprint()
        assert doc["name"] == "numpy"
        assert doc["dtypes"]["int64"] == "int64"
        assert doc["dtypes"]["float64"] == "float64"


class TestLookupShards:
    def test_partition_and_key_map(self, spec, tmp_path):
        store = ShardCache(tmp_path)
        shards = plan(spec).shards
        keys, hits, misses = lookup_shards(store, spec, shards)
        assert hits == {}
        assert misses == list(shards)
        assert sorted(keys) == [shard.index for shard in shards]
        store.put(keys[shards[2].index], {"v": 7}, 0.5)
        keys, hits, misses = lookup_shards(store, spec, shards)
        assert set(hits) == {shards[2].index}
        assert hits[shards[2].index]["value"] == {"v": 7}
        assert misses == [s for s in shards if s.index != shards[2].index]


class TestVerifyCache:
    def _populated(self, spec, tmp_path):
        store = ShardCache(tmp_path)
        shards = plan(spec).shards
        keys = [shard_key(spec, shard) for shard in shards]
        for key in keys:
            store.put(key, {"v": 1}, 0.1, experiment=spec.name)
        return store, keys

    def test_clean_cache_reports_all_ok(self, spec, tmp_path):
        store, keys = self._populated(spec, tmp_path)
        report = verify_cache(tmp_path)
        assert report["scanned"] == len(keys)
        assert report["ok"] == len(keys)
        assert report["bad"] == []

    def test_bad_entries_reported_with_reasons(self, spec, tmp_path):
        store, keys = self._populated(spec, tmp_path)
        store.path_for(keys[0]).write_text("{ torn")
        doc = json.loads(store.path_for(keys[1]).read_text())
        doc["key"] = "wrong"
        store.path_for(keys[1]).write_text(json.dumps(doc))
        report = verify_cache(tmp_path)
        assert report["ok"] == len(keys) - 2
        reasons = {entry["reason"].split(":")[0] for entry in report["bad"]}
        assert any("JSON" in reason for reason in reasons)
        assert any("mismatch" in reason for reason in reasons)
        # Report-only by default: nothing moved.
        assert report["quarantined"] == 0
        assert not (tmp_path / "quarantine").exists()

    def test_quarantine_moves_bad_entries(self, spec, tmp_path):
        store, keys = self._populated(spec, tmp_path)
        store.path_for(keys[0]).write_text("{ torn")
        report = verify_cache(tmp_path, quarantine=True)
        assert report["quarantined"] == 1
        assert not store.path_for(keys[0]).exists()
        assert (tmp_path / "quarantine" / f"{keys[0]}.json").exists()
        # A second scan is clean.
        again = verify_cache(tmp_path)
        assert again["bad"] == []
        assert again["scanned"] == len(keys) - 1

    def test_missing_directory_is_empty_report(self, tmp_path):
        report = verify_cache(tmp_path / "nope")
        assert report["scanned"] == 0
        assert report["bad"] == []

    def test_stray_files_are_skipped(self, spec, tmp_path):
        store, keys = self._populated(spec, tmp_path)
        (tmp_path / "README.txt").write_text("not an entry")
        (store.path_for(keys[0]).parent / "stray.json").write_text("{}")
        report = verify_cache(tmp_path)
        assert report["scanned"] == len(keys)
        assert report["bad"] == []
