"""Unit tests for the Protocol-style baselines (voter, anti-voter,
2-choices, 3-majority, trivial, random recolouring)."""

import numpy as np
import pytest

from repro.baselines import (
    AntiVoterModel,
    RandomRecolouring,
    ThreeMajority,
    TrivialResampling,
    TwoChoices,
    VoterModel,
    partition_imbalance,
    uniform_partition_protocol,
)
from repro.core.state import DARK, AgentState, dark
from repro.core.weights import WeightTable


class TestVoter:
    def test_adopts_sampled_colour(self, rng):
        assert VoterModel().transition(dark(0), [dark(3)], rng) == dark(3)

    def test_same_colour_returns_same_object(self, rng):
        state = dark(1)
        assert VoterModel().transition(state, [dark(1)], rng) is state

    def test_initial_state(self):
        assert VoterModel().initial_state(2) == AgentState(2, DARK)


class TestAntiVoter:
    def test_adopts_opposite(self, rng):
        protocol = AntiVoterModel()
        assert protocol.transition(dark(0), [dark(0)], rng) == dark(1)
        assert protocol.transition(dark(1), [dark(1)], rng) == dark(0)

    def test_keeps_when_already_opposite(self, rng):
        protocol = AntiVoterModel()
        state = dark(0)
        assert protocol.transition(state, [dark(1)], rng) is state

    def test_rejects_third_colour(self):
        with pytest.raises(ValueError):
            AntiVoterModel().initial_state(2)


class TestTwoChoices:
    def test_agreeing_samples_win(self, rng):
        protocol = TwoChoices()
        assert (
            protocol.transition(dark(0), [dark(2), dark(2)], rng) == dark(2)
        )

    def test_disagreeing_samples_noop(self, rng):
        protocol = TwoChoices()
        state = dark(0)
        assert protocol.transition(state, [dark(1), dark(2)], rng) is state

    def test_arity(self):
        assert TwoChoices().arity == 2


class TestThreeMajority:
    def test_majority_with_self(self, rng):
        protocol = ThreeMajority()
        state = dark(0)
        # Own colour + one sample agree -> keep own colour.
        assert protocol.transition(state, [dark(0), dark(2)], rng) is state

    def test_majority_of_samples(self, rng):
        protocol = ThreeMajority()
        assert (
            protocol.transition(dark(0), [dark(1), dark(1)], rng) == dark(1)
        )

    def test_three_distinct_uniform_choice(self):
        protocol = ThreeMajority()
        rng = np.random.default_rng(0)
        outcomes = [
            protocol.transition(dark(0), [dark(1), dark(2)], rng).colour
            for _ in range(6000)
        ]
        counts = np.bincount(outcomes, minlength=3)
        np.testing.assert_allclose(counts / 6000, [1 / 3] * 3, atol=0.03)


class TestTrivialResampling:
    def test_resamples_proportionally(self):
        weights = WeightTable([1.0, 3.0])
        protocol = TrivialResampling(weights)
        rng = np.random.default_rng(1)
        outcomes = [
            protocol.transition(dark(0), [dark(0)], rng).colour
            for _ in range(20_000)
        ]
        share = sum(outcomes) / len(outcomes)
        assert share == pytest.approx(0.75, abs=0.02)

    def test_snapshot_is_blind_to_new_colours(self):
        weights = WeightTable([1.0, 1.0])
        protocol = TrivialResampling(weights)
        weights.add_colour(10.0)  # added after the snapshot
        rng = np.random.default_rng(2)
        outcomes = {
            protocol.transition(dark(0), [dark(0)], rng).colour
            for _ in range(5000)
        }
        assert 2 not in outcomes  # never adopts the new colour
        assert protocol.known_k == 2

    def test_resample_probability_validated(self):
        with pytest.raises(ValueError):
            TrivialResampling(WeightTable([1.0]), resample_probability=0.0)

    def test_partial_resampling_rate(self):
        weights = WeightTable([1.0, 1.0])
        protocol = TrivialResampling(weights, resample_probability=0.1)
        rng = np.random.default_rng(3)
        changes = sum(
            protocol.transition(dark(0), [dark(0)], rng).colour != 0
            for _ in range(20_000)
        )
        # Change requires resampling (10%) AND drawing colour 1 (50%).
        assert changes / 20_000 == pytest.approx(0.05, abs=0.01)


class TestUniformPartition:
    def test_factory_builds_unit_weights(self):
        protocol = uniform_partition_protocol(4)
        assert protocol.weights.k == 4
        assert all(w == 1.0 for w in protocol.weights)

    def test_random_recolouring_uniform(self):
        protocol = RandomRecolouring(4)
        rng = np.random.default_rng(4)
        outcomes = [
            protocol.transition(dark(0), [dark(0)], rng).colour
            for _ in range(20_000)
        ]
        counts = np.bincount(outcomes, minlength=4)
        np.testing.assert_allclose(counts / 20_000, [0.25] * 4, atol=0.02)

    def test_random_recolouring_needs_two_colours(self):
        with pytest.raises(ValueError):
            RandomRecolouring(1)

    def test_partition_imbalance(self):
        assert partition_imbalance([5, 5, 5]) == 0
        assert partition_imbalance([3, 7, 5]) == 4
