"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.core.weights import WeightTable
from repro.experiments.workloads import (
    colours_from_counts,
    equilibrium_split,
    proportional_counts,
    random_counts,
    uniform_counts,
    worst_case_counts,
)


class TestWorstCase:
    def test_structure(self):
        counts = worst_case_counts(100, 4)
        np.testing.assert_array_equal(counts, [97, 1, 1, 1])

    def test_sum_is_n(self):
        assert worst_case_counts(57, 5).sum() == 57

    def test_validates(self):
        with pytest.raises(ValueError):
            worst_case_counts(3, 4)


class TestUniform:
    def test_even_split(self):
        np.testing.assert_array_equal(uniform_counts(12, 4), [3, 3, 3, 3])

    def test_remainder_to_low_ids(self):
        np.testing.assert_array_equal(uniform_counts(14, 4), [4, 4, 3, 3])

    def test_sum_is_n(self):
        assert uniform_counts(101, 7).sum() == 101


class TestProportional:
    def test_exact_case(self, skewed_weights):
        np.testing.assert_array_equal(
            proportional_counts(600, skewed_weights), [100, 200, 300]
        )

    def test_sum_is_n(self, skewed_weights):
        assert proportional_counts(601, skewed_weights).sum() == 601

    def test_every_colour_present(self):
        weights = WeightTable([1.0, 100.0])
        counts = proportional_counts(50, weights)
        assert counts.min() >= 1
        assert counts.sum() == 50

    def test_validates(self, skewed_weights):
        with pytest.raises(ValueError):
            proportional_counts(2, skewed_weights)


class TestRandom:
    def test_sum_and_support(self):
        counts = random_counts(50, 6, rng=0)
        assert counts.sum() == 50
        assert counts.min() >= 1

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(
            random_counts(30, 4, rng=5), random_counts(30, 4, rng=5)
        )

    def test_roughly_uniform_in_expectation(self):
        totals = np.zeros(4)
        for seed in range(200):
            totals += random_counts(40, 4, rng=seed)
        np.testing.assert_allclose(totals / 200, [10] * 4, atol=1.0)


class TestEquilibriumSplit:
    def test_totals_to_n(self, skewed_weights):
        dark, light = equilibrium_split(700, skewed_weights)
        assert dark.sum() + light.sum() == 700

    def test_near_eq7(self, skewed_weights):
        dark, light = equilibrium_split(700, skewed_weights)
        np.testing.assert_allclose(dark, [100, 200, 300], atol=2)
        np.testing.assert_allclose(light, [100 / 6, 200 / 6, 300 / 6], atol=2)

    def test_dark_at_least_one(self):
        weights = WeightTable([1.0, 50.0])
        dark, _ = equilibrium_split(20, weights)
        assert dark.min() >= 1


class TestColoursFromCounts:
    def test_expansion(self):
        assert colours_from_counts(np.array([2, 0, 1])) == [0, 0, 2]

    def test_length(self):
        assert len(colours_from_counts(np.array([3, 4]))) == 7
