"""Unit tests for the vectorised agent-level engine: kernel registry,
construction validation, stepping semantics and engine routing."""

import numpy as np
import pytest

from repro.baselines.three_majority import ThreeMajority
from repro.baselines.voter import VoterModel
from repro.core.ablations import EagerRecolouring, UnweightedLightening
from repro.core.derandomised import DerandomisedDiversification
from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine.array_engine import (
    ArraySimulation,
    has_kernel,
    kernel_for,
    supports_topology,
)
from repro.engine.observers import Observer
from repro.engine.population import Population
from repro.engine.scheduler import RoundRobinScheduler
from repro.topology import CompleteGraph, CycleGraph


def build(n=12, k=3, seed=0, **kwargs):
    weights = WeightTable.uniform(k)
    colours = np.arange(n) % k
    return ArraySimulation(
        Diversification(weights), colours, k=k, rng=seed, **kwargs
    )


class TestKernelRegistry:
    def test_kernelised_protocols(self):
        weights = WeightTable([1.0, 2.0])
        for protocol in (
            Diversification(weights),
            UnweightedLightening(weights),
            VoterModel(),
            ThreeMajority(),
        ):
            assert has_kernel(protocol)
            assert kernel_for(protocol) is not None

    def test_unkernelised_protocols(self):
        weights = WeightTable([1.0, 2.0])
        assert not has_kernel(EagerRecolouring(weights))
        assert not has_kernel(DerandomisedDiversification(weights))

    def test_subclass_does_not_inherit_kernel(self):
        """A subclass may override transition; exact type match only."""

        class Custom(Diversification):
            def transition(self, u, sampled, rng):
                return u

        assert not has_kernel(Custom(WeightTable([1.0])))

    def test_unkernelised_protocol_rejected_by_engine(self):
        weights = WeightTable([1.0, 2.0])
        with pytest.raises(ValueError, match="no vectorised kernel"):
            ArraySimulation(
                EagerRecolouring(weights), np.array([0, 1]), k=2
            )


class TestTopologySupport:
    def test_supported(self):
        assert supports_topology(None)
        assert supports_topology(CompleteGraph(8))
        assert supports_topology(CycleGraph(8))

    def test_unsupported(self):
        class Opaque:
            n = 8

        assert not supports_topology(Opaque())
        with pytest.raises(ValueError, match="neighbour_arrays"):
            build(n=8, topology=Opaque())

    def test_topology_size_must_match(self):
        with pytest.raises(ValueError):
            build(n=10, topology=CycleGraph(5))

    def test_complete_graph_object_matches_none(self):
        """topology=CompleteGraph(n) draws the same stream as None."""
        a = build(n=16, seed=5).run(2000)
        b = build(n=16, seed=5, topology=CompleteGraph(16)).run(2000)
        np.testing.assert_array_equal(
            a.colour_counts(), b.colour_counts()
        )


class TestConstruction:
    def test_requires_two_agents(self):
        with pytest.raises(ValueError):
            build(n=1)

    def test_negative_colours_rejected(self):
        with pytest.raises(ValueError):
            ArraySimulation(
                Diversification(WeightTable([1.0])), np.array([0, -1])
            )

    def test_k_too_small_rejected(self):
        with pytest.raises(ValueError):
            ArraySimulation(
                Diversification(WeightTable([1.0])),
                np.array([0, 1]),
                k=1,
            )

    def test_accepts_population(self):
        weights = WeightTable.uniform(2)
        protocol = Diversification(weights)
        population = Population.from_colours([0, 1, 0, 1], protocol)
        simulation = ArraySimulation(protocol, population, rng=0)
        assert simulation.n == 4
        assert simulation.k == 2
        np.testing.assert_array_equal(
            simulation.colour_counts(), population.colour_counts()
        )

    def test_shades_default_to_initial_state(self):
        simulation = build(n=6)
        # Diversification starts everyone dark.
        np.testing.assert_array_equal(
            simulation.dark_counts(), simulation.colour_counts()
        )

    def test_shade_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArraySimulation(
                Diversification(WeightTable([1.0])),
                np.array([0, 0, 0]),
                shades=np.array([1, 1]),
            )

    def test_replication_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArraySimulation(
                Diversification(WeightTable([1.0])),
                np.zeros((3, 4), dtype=np.int64),
                replications=2,
            )

    def test_colour_set_growth_rejected_between_runs(self):
        weights = WeightTable([1.0, 2.0])
        simulation = ArraySimulation(
            Diversification(weights), np.array([0, 1, 0, 1]), rng=0
        )
        simulation.run(10)
        weights.add_colour(3.0)
        with pytest.raises(ValueError, match="grew"):
            simulation.run(10)


class TestStepping:
    def test_run_negative_rejected(self):
        with pytest.raises(ValueError):
            build().run(-1)

    def test_time_advances(self):
        simulation = build()
        simulation.run(123)
        assert simulation.time == 123

    def test_step_equals_run_one(self):
        a = build(n=16, seed=7)
        b = build(n=16, seed=7)
        for _ in range(40):
            a.step()
        b.run(40)
        np.testing.assert_array_equal(a.colour_counts(), b.colour_counts())
        np.testing.assert_array_equal(a.dark_counts(), b.dark_counts())
        assert a.time == b.time == 40

    def test_step_reports_change(self):
        simulation = build(n=8, k=2, seed=3)
        results = [simulation.step() for _ in range(200)]
        assert any(results)
        assert simulation.changes == sum(results)

    def test_voter_consensus_is_absorbing(self):
        simulation = ArraySimulation(
            VoterModel(), np.array([0, 1, 0, 1, 1, 0]), k=2, rng=1
        )
        simulation.run(5000)
        counts = simulation.colour_counts()
        assert counts.max() == 6  # consensus reached at this horizon
        changes = simulation.changes
        simulation.run(500)
        assert simulation.changes == changes  # absorbed


class TestBatchedMode:
    def test_observers_rejected(self):
        with pytest.raises(ValueError, match="single-run"):
            build(replications=3, observers=[Observer()])
        simulation = build(replications=3)
        with pytest.raises(ValueError, match="single-run"):
            simulation.add_observer(Observer())

    def test_population_view_rejected(self):
        simulation = build(replications=3)
        with pytest.raises(ValueError):
            simulation.population

    def test_round_robin_rejected(self):
        with pytest.raises(ValueError, match="uniform scheduler"):
            build(replications=2, scheduler=RoundRobinScheduler())

    def test_two_dimensional_colours_imply_batching(self):
        colours = np.stack([np.arange(8) % 2, np.zeros(8, dtype=int)])
        simulation = ArraySimulation(
            Diversification(WeightTable.uniform(2)), colours, rng=0
        )
        assert simulation.replications == 2
        counts = simulation.run(300).colour_counts()
        assert counts.shape == (2, 2)
        # Row 1 started monochrome and must stay monochrome.
        np.testing.assert_array_equal(counts[1], [8, 0])

    def test_replications_share_no_state(self):
        """Identical start rows evolve independently (different draws)."""
        simulation = build(n=30, replications=16, seed=9)
        simulation.run(2000)
        counts = simulation.colour_counts()
        assert len({tuple(row) for row in counts}) > 1


class TestObserverBridge:
    def test_on_change_sees_exact_state(self):
        """Every callback's (old, new) pair matches the population
        delta, and time is strictly increasing within a run."""

        class Recording(Observer):
            def __init__(self):
                self.events = []

            def on_change(self, simulation, agent, old, new):
                view = simulation.population
                self.events.append(
                    (
                        simulation.time,
                        agent,
                        old,
                        new,
                        view.state_of(agent),
                    )
                )

        observer = Recording()
        simulation = build(n=20, seed=2, observers=[observer])
        simulation.run(3000)
        assert observer.events
        assert simulation.changes == len(observer.events)
        times = [event[0] for event in observer.events]
        assert times == sorted(times)
        assert times[-1] <= 3000
        for _, _, old, new, current in observer.events:
            assert old != new
            assert current == new  # state applied before the callback
