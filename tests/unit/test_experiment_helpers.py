"""Unit tests for experiment-module helper functions."""

import numpy as np
import pytest

from repro.core.weights import WeightTable
from repro.experiments.convergence import window_deviation_profile
from repro.experiments.phase1 import hitting_times
from repro.experiments.phases import potential_series
from repro.experiments.robustness import recovery_time_after
from repro.experiments.runner import run_aggregate
from repro.experiments.variants import _stabilised_share_error


class TestPotentialSeries:
    def test_series_shapes_and_start(self, skewed_weights):
        record = run_aggregate(
            skewed_weights, n=120, steps=20_000, seed=0,
            record_interval=1000, start="worst",
        )
        series = potential_series(record)
        length = len(record.times)
        assert len(series["phi"]) == length
        assert len(series["psi"]) == length
        assert len(series["sigma_sq"]) == length
        # All-dark start: psi(0) = 0, sigma(0) = (n/w)^2.
        assert series["psi"][0] == pytest.approx(0.0)
        assert series["sigma_sq"][0] == pytest.approx((120 / 6.0) ** 2)

    def test_potentials_non_negative(self, skewed_weights):
        record = run_aggregate(
            skewed_weights, n=90, steps=10_000, seed=1
        )
        series = potential_series(record)
        for key in ("phi", "psi", "sigma_sq"):
            assert (series[key] >= -1e-9).all()


class TestRecoveryTimeAfter:
    def test_finds_first_recovery(self, skewed_weights):
        times = np.array([0, 10, 20, 30])
        counts = np.array(
            [[100, 200, 300], [400, 100, 100], [110, 195, 295],
             [100, 200, 300]]
        )
        hit = recovery_time_after(times, counts, skewed_weights, 10, 0.05)
        assert hit == 20

    def test_none_when_never_recovering(self, skewed_weights):
        times = np.array([0, 10])
        counts = np.array([[100, 200, 300], [400, 100, 100]])
        assert recovery_time_after(
            times, counts, skewed_weights, 0, 0.01
        ) is None

    def test_ignores_snapshots_before_shock(self, skewed_weights):
        times = np.array([0, 10, 20])
        counts = np.array(
            [[100, 200, 300], [100, 200, 300], [400, 100, 100]]
        )
        # In-band snapshot at t=10 is ignored because shock is at 15.
        assert recovery_time_after(
            times, counts, skewed_weights, 15, 0.05
        ) is None


class TestWindowDeviationProfile:
    def test_shape_and_range(self):
        weights = WeightTable([1.0, 2.0])
        profile = window_deviation_profile(
            weights, 96, seed=0, window_samples=8, settle_factor=2.0
        )
        assert profile.shape == (8, 2)
        assert (profile >= 0).all()
        assert (profile <= 1).all()


class TestStabilisedShareError:
    def test_tail_only(self, skewed_weights):
        record = run_aggregate(
            skewed_weights, n=120, steps=60_000, seed=2,
            record_interval=1000,
        )
        error, shares = _stabilised_share_error(record, skewed_weights)
        assert 0 <= error <= 1
        assert shares.shape == (3,)
        assert shares.sum() == pytest.approx(1.0)


class TestHittingTimes:
    def test_returns_both_times(self):
        weights = WeightTable([1.0, 2.0])
        result = hitting_times(weights, 96, seed=3)
        assert result["t1"] is not None
        assert result["t2"] is not None
        assert result["t2"] >= result["t1"]

    def test_epsilon_affects_targets(self):
        """A looser epsilon cannot make hitting slower on average —
        spot-check with a shared seed."""
        weights = WeightTable([1.0, 2.0])
        tight = hitting_times(weights, 96, epsilon=0.05, seed=4)
        loose = hitting_times(weights, 96, epsilon=0.3, seed=4)
        assert loose["t1"] <= tight["t1"]
