"""Unit tests for the array-API backend seam: resolution, aliases, the
``REPRO_BACKEND`` environment variable, dtype tables, host/device
boundary converters, host-drawn RNG blocks, and the engine-loop gate."""

import numpy as np
import pytest

from repro.engine.backend import (
    ENV_VAR,
    HOST,
    Backend,
    DtypeTable,
    available_backends,
    require_engine_loops,
    resolve_backend,
)


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend() is HOST

    def test_explicit_name(self):
        assert resolve_backend("numpy") is HOST

    def test_aliases(self):
        for alias in ("np", "host", "NumPy", " numpy "):
            assert resolve_backend(alias) is HOST

    def test_backend_instance_passes_through(self):
        assert resolve_backend(HOST) is HOST

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_backend() is HOST

    def test_env_var_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "tpu-magic")
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend()

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="numpy"):
            resolve_backend("no-such-backend")

    def test_missing_package_raises_runtime_error(self):
        availability = available_backends()
        missing = [
            name for name, present in availability.items() if not present
        ]
        if not missing:
            pytest.skip("every known backend is importable here")
        with pytest.raises(RuntimeError, match="not importable"):
            resolve_backend(missing[0])

    def test_available_backends_covers_all_known(self):
        availability = available_backends()
        assert set(availability) >= {"numpy", "array-api-strict", "cupy"}
        assert availability["numpy"] is True

    def test_strict_alias_resolves_or_gates(self):
        """The strict aliases map to the canonical name whether or not
        the package is installed."""
        try:
            backend = resolve_backend("strict")
        except RuntimeError as error:
            assert "array-api-strict" in str(error)
        else:
            assert backend.name == "array-api-strict"
            assert resolve_backend("array_api_strict") is backend


class TestHostBackend:
    def test_identity(self):
        assert HOST.name == "numpy"
        assert HOST.xp is np
        assert HOST.is_host
        assert HOST.supports_engine_loops

    def test_dtype_table(self):
        assert HOST.dtypes.int64 is np.int64
        assert HOST.dtypes.float64 is np.float64
        assert HOST.dtypes.uint64 is np.uint64
        assert HOST.dtypes.bool_ is np.bool_

    def test_asarray_with_and_without_dtype(self):
        out = HOST.asarray([1, 2, 3], dtype=HOST.dtypes.int64)
        assert out.dtype == np.int64
        assert HOST.asarray([1.5]).dtype == np.float64

    def test_to_numpy_is_a_view_by_default(self):
        source = np.arange(4, dtype=np.int64)
        assert HOST.to_numpy(source) is source

    def test_to_numpy_copy_is_independent(self):
        source = np.arange(4, dtype=np.int64)
        copied = HOST.to_numpy(source, copy=True)
        copied[0] = 99
        assert source[0] == 0

    def test_from_host_is_identity_view(self):
        source = np.arange(4, dtype=np.float64)
        assert HOST.from_host(source) is source

    def test_uniform_block_matches_direct_draw(self):
        """Host-drawn blocks consume the same stream as a direct
        ``rng.random`` call — the seeding-truth contract."""
        direct = np.random.default_rng(7).random((3, 2))
        via_backend = HOST.uniform_block(
            np.random.default_rng(7), (3, 2)
        )
        np.testing.assert_array_equal(direct, via_backend)

    def test_integer_block_dtype_and_range(self):
        block = HOST.integer_block(
            np.random.default_rng(0), 0, 10, (100,)
        )
        assert block.dtype == np.int64
        assert block.min() >= 0 and block.max() < 10
        inclusive = HOST.integer_block(
            np.random.default_rng(0), 0, 1, (50,), endpoint=True
        )
        assert set(np.unique(inclusive)) <= {0, 1}


class TestEngineLoopGate:
    def _kernel_only_backend(self):
        return Backend(
            "kernel-only",
            np,
            DtypeTable(np.int64, np.float64, np.uint64, np.bool_),
            supports_engine_loops=False,
        )

    def test_gated_backend_raises_with_engine_name(self):
        with pytest.raises(ValueError, match="TestEngine"):
            require_engine_loops(self._kernel_only_backend(), "TestEngine")

    def test_error_names_supported_alternatives(self):
        with pytest.raises(ValueError, match="numpy"):
            require_engine_loops(self._kernel_only_backend(), "TestEngine")

    def test_host_passes_through(self):
        assert require_engine_loops(HOST, "TestEngine") is HOST

    def test_engines_reject_gated_backend(self):
        from repro.core.weights import WeightTable
        from repro.engine import (
            ArraySimulation,
            BatchedAggregateSimulation,
            HeterogeneousAggregateBatch,
        )
        from repro.core.diversification import Diversification

        gated = self._kernel_only_backend()
        weights = WeightTable.uniform(2)
        with pytest.raises(ValueError, match="ArraySimulation"):
            ArraySimulation(
                Diversification(weights),
                np.array([0, 1]),
                k=2,
                backend=gated,
            )
        with pytest.raises(ValueError, match="BatchedAggregateSimulation"):
            BatchedAggregateSimulation(
                weights, [5, 5], replications=2, backend=gated
            )
        with pytest.raises(ValueError, match="HeterogeneousAggregateBatch"):
            HeterogeneousAggregateBatch(
                [weights], [[5, 5]], backend=gated
            )

    def test_streaming_accumulators_reject_gated_backend(self):
        from repro.analysis.streaming import (
            RunningMoments,
            StreamingPotentials,
        )

        gated = self._kernel_only_backend()
        with pytest.raises(ValueError, match="streaming accumulators"):
            StreamingPotentials(np.ones(2), backend=gated)
        with pytest.raises(ValueError, match="streaming accumulators"):
            RunningMoments(3, backend=gated)


class TestEngineBackendPlumbing:
    def test_engines_expose_resolved_backend(self):
        from repro.core.weights import WeightTable
        from repro.core.diversification import Diversification
        from repro.engine import ArraySimulation, BatchedAggregateSimulation

        weights = WeightTable.uniform(2)
        sim = ArraySimulation(
            Diversification(weights),
            np.array([0, 1, 0, 1]),
            k=2,
            rng=0,
            backend="numpy",
        )
        assert sim.backend is HOST
        batch = BatchedAggregateSimulation(
            weights, [5, 5], replications=2, rng=0
        )
        assert batch.backend is HOST

    def test_numpy_backend_trajectory_matches_default(self):
        """An explicit backend="numpy" is bit-identical to no backend
        argument — the seam itself must be free."""
        from repro.core.weights import WeightTable
        from repro.core.diversification import Diversification
        from repro.engine import ArraySimulation

        weights = WeightTable([1.0, 2.0, 3.0])
        colours = np.arange(12) % 3
        default = ArraySimulation(
            Diversification(weights), colours, k=3, rng=42
        ).run(500)
        explicit = ArraySimulation(
            Diversification(WeightTable([1.0, 2.0, 3.0])),
            colours,
            k=3,
            rng=42,
            backend="numpy",
        ).run(500)
        np.testing.assert_array_equal(
            default.colour_counts(), explicit.colour_counts()
        )
        np.testing.assert_array_equal(
            default.dark_counts(), explicit.dark_counts()
        )
        assert default.changes == explicit.changes
