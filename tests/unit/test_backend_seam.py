"""Static guard for the backend seam — now delegated to ``repro.lint``.

``src/repro/engine/`` and ``src/repro/analysis/streaming.py`` must
obtain their array namespace and dtypes from ``repro.engine.backend``
— the *only* sanctioned ``import numpy`` site in those layers.  The
detection used to live here as line-oriented regexes; it is now the
AST-based RL1 rule family (:mod:`repro.lint.rules.seam`), which also
catches the forms the regexes missed — aliased imports
(``import numpy as _np``), parenthesised multi-line
``from numpy import (...)`` and dynamic ``__import__("numpy")``.
This test keeps the pytest gate (the seam cannot erode even where CI
skips the dedicated lint job) and guards the guard: the scope must be
populated, the sanctioned module must really import numpy, and the
rules must still fire on planted violations.
"""

import textwrap
from pathlib import Path

import repro
from repro.lint import run_lint
from repro.lint.rules.seam import SANCTIONED, in_seam_scope

SRC = Path(repro.__file__).resolve().parent


def test_seam_is_clean():
    offenders = run_lint(select=["RL1"])
    assert not offenders, (
        "backend-seam violations — route arrays and dtypes through "
        "repro.engine.backend:\n"
        + "\n".join(f"{f.location()}: {f.code} {f.message}" for f in offenders)
    )


def test_scope_is_populated():
    """Guard the guard: if the layout moves, fail loudly rather than
    silently scanning nothing."""
    scoped = [
        path
        for path in sorted(SRC.rglob("*.py"))
        if in_seam_scope(path.relative_to(SRC).as_posix())
    ]
    assert len(scoped) >= 9, scoped
    assert (SRC / SANCTIONED).is_file()
    assert not in_seam_scope(SANCTIONED)


def test_backend_module_is_the_numpy_importer():
    """The sanctioned module really does import numpy (sanity check
    that the allow-list entry is not stale)."""
    assert any(
        line.startswith(("import numpy", "from numpy"))
        for line in (SRC / SANCTIONED).read_text().splitlines()
    )


def test_rule_fires_on_the_historic_regex_gaps(tmp_path):
    """Regression: the three import forms the regex guard missed."""
    source = textwrap.dedent(
        """\
        import numpy as _np
        from numpy import (
            int64,
            zeros,
        )
        handle = __import__("numpy")
        WIDTH = _np.float64
        """
    )
    target = tmp_path / "engine" / "module.py"
    target.parent.mkdir()
    target.write_text(source)
    found = {
        (f.line, f.code) for f in run_lint([tmp_path], root=tmp_path)
    }
    assert found == {
        (1, "RL101"),  # aliased import
        (2, "RL101"),  # parenthesised multi-line from-import
        (6, "RL102"),  # dynamic __import__
        (7, "RL103"),  # dtype literal through the alias
    }
