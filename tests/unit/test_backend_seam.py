"""Static guard for the backend seam.

``src/repro/engine/`` and ``src/repro/analysis/streaming.py`` must
obtain their array namespace and dtypes from ``repro.engine.backend``
— the *only* sanctioned ``import numpy`` site in those layers.  This
test greps the sources so the seam cannot silently erode in later PRs:
a direct numpy import or a raw ``np.`` dtype literal anywhere else in
the scope is a failure naming the offending file and line.

Allowed by design: ``np.random`` *attribute access* (e.g. the
checkpoint layer's ``getattr(np.random, name)`` legacy-state lookup
through the host alias) and host aliases like ``np = HOST.xp`` — the
guard targets the import statement and dtype literals specifically.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The seam scope: every engine module plus the streaming analysis
#: accumulators.  ``backend.py`` is the one sanctioned numpy importer.
SANCTIONED = "backend.py"

#: ``import numpy`` / ``from numpy import ...`` at any indentation.
_IMPORT = re.compile(r"^\s*(?:import|from)\s+numpy\b")

#: Raw dtype literals spelled through an ``np.`` (or ``numpy.``)
#: prefix; dtypes must come from the backend's dtype table or the
#: host constants re-exported by ``repro.engine.backend``.
_DTYPE = re.compile(
    r"\b(?:np|numpy)\.(?:u?int\d+|float\d+|bool_|complex\d+)\b"
)


def _scope_files() -> list[Path]:
    files = sorted((SRC / "engine").glob("*.py"))
    files.append(SRC / "analysis" / "streaming.py")
    return files


def _violations(pattern: re.Pattern) -> list[str]:
    found = []
    for path in _scope_files():
        if path.name == SANCTIONED and path.parent.name == "engine":
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if pattern.search(line):
                found.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    return found


def test_scope_is_populated():
    """Guard the guard: if the layout moves, fail loudly rather than
    silently scanning nothing."""
    files = _scope_files()
    assert len(files) >= 10, files
    assert all(path.is_file() for path in files), files
    assert any(path.name == SANCTIONED for path in files)


def test_no_direct_numpy_imports_outside_backend():
    offenders = _violations(_IMPORT)
    assert not offenders, (
        "direct numpy import outside engine/backend.py — route through "
        "repro.engine.backend instead:\n" + "\n".join(offenders)
    )


def test_no_raw_dtype_literals_outside_backend():
    offenders = _violations(_DTYPE)
    assert not offenders, (
        "raw np. dtype literal outside engine/backend.py — use the "
        "backend dtype table (backend.dtypes.int64, ...) or the host "
        "constants (INT64, FLOAT64, ...) instead:\n"
        + "\n".join(offenders)
    )


def test_backend_module_is_the_numpy_importer():
    """The sanctioned module really does import numpy (sanity check
    that the allow-list entry is not stale)."""
    lines = (SRC / "engine" / SANCTIONED).read_text().splitlines()
    assert any(_IMPORT.search(line) for line in lines)
