"""Unit tests for repro.core.weights."""

import numpy as np
import pytest

from repro.core.weights import WeightTable, weights_from_demands


class TestConstruction:
    def test_from_sequence(self):
        table = WeightTable([1.0, 2.0, 3.0])
        assert table.k == 3
        assert table.total == 6.0

    def test_from_mapping(self):
        table = WeightTable({0: 1.0, 1: 2.0})
        assert table.weight(1) == 2.0

    def test_sparse_mapping_rejected(self):
        with pytest.raises(ValueError):
            WeightTable({0: 1.0, 2: 2.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WeightTable([])

    def test_weight_below_one_rejected(self):
        with pytest.raises(ValueError):
            WeightTable([0.5])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            WeightTable([float("nan")])

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            WeightTable([float("inf")])

    def test_uniform_factory(self):
        table = WeightTable.uniform(5)
        assert table.k == 5
        assert all(w == 1.0 for w in table)

    def test_uniform_requires_positive_k(self):
        with pytest.raises(ValueError):
            WeightTable.uniform(0)


class TestDerivedQuantities:
    def test_fair_shares_sum_to_one(self, skewed_weights):
        assert skewed_weights.fair_shares().sum() == pytest.approx(1.0)

    def test_fair_shares_values(self, skewed_weights):
        np.testing.assert_allclose(
            skewed_weights.fair_shares(), [1 / 6, 2 / 6, 3 / 6]
        )

    def test_dark_shares_eq7(self, skewed_weights):
        # A_i/n = w_i/(1+w) with w = 6.
        np.testing.assert_allclose(
            skewed_weights.dark_shares(), [1 / 7, 2 / 7, 3 / 7]
        )

    def test_light_shares_eq7(self, skewed_weights):
        # a_i/n = (w_i/w)/(1+w).
        np.testing.assert_allclose(
            skewed_weights.light_shares(),
            [1 / (6 * 7), 2 / (6 * 7), 3 / (6 * 7)],
        )

    def test_dark_plus_light_equals_fair(self, skewed_weights):
        total = skewed_weights.dark_shares() + skewed_weights.light_shares()
        np.testing.assert_allclose(total, skewed_weights.fair_shares())

    def test_lighten_probability(self, skewed_weights):
        assert skewed_weights.lighten_probability(0) == 1.0
        assert skewed_weights.lighten_probability(2) == pytest.approx(1 / 3)

    def test_as_array_dtype(self, skewed_weights):
        assert skewed_weights.as_array().dtype == np.float64


class TestMutation:
    def test_add_colour_returns_next_id(self, skewed_weights):
        assert skewed_weights.add_colour(4.0) == 3
        assert skewed_weights.k == 4
        assert skewed_weights.total == 10.0

    def test_add_colour_validates_weight(self, skewed_weights):
        with pytest.raises(ValueError):
            skewed_weights.add_colour(0.25)

    def test_copy_is_independent(self, skewed_weights):
        clone = skewed_weights.copy()
        clone.add_colour(2.0)
        assert skewed_weights.k == 3
        assert clone.k == 4

    def test_equality(self):
        assert WeightTable([1, 2]) == WeightTable([1.0, 2.0])
        assert WeightTable([1, 2]) != WeightTable([1, 3])


class TestIntegerCheck:
    def test_integer_table(self):
        assert WeightTable([1.0, 2.0, 5.0]).is_integer()

    def test_non_integer_table(self):
        assert not WeightTable([1.0, 2.5]).is_integer()


class TestWeightsFromDemands:
    def test_rescales_min_to_one(self):
        table = weights_from_demands([2.0, 4.0, 6.0])
        assert list(table) == [1.0, 2.0, 3.0]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            weights_from_demands([0.0, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            weights_from_demands([])
