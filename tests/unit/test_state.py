"""Unit tests for repro.core.state."""

import pytest

from repro.core.state import DARK, LIGHT, AgentState, dark, light


class TestAgentState:
    def test_constructor_stores_fields(self):
        state = AgentState(colour=3, shade=1)
        assert state.colour == 3
        assert state.shade == 1

    def test_negative_colour_rejected(self):
        with pytest.raises(ValueError):
            AgentState(-1, 0)

    def test_negative_shade_rejected(self):
        with pytest.raises(ValueError):
            AgentState(0, -1)

    def test_is_light_and_is_dark_binary(self):
        assert AgentState(0, LIGHT).is_light
        assert not AgentState(0, LIGHT).is_dark
        assert AgentState(0, DARK).is_dark
        assert not AgentState(0, DARK).is_light

    def test_multi_shade_counts_as_dark(self):
        assert AgentState(0, 5).is_dark

    def test_lightened_decrements_shade(self):
        assert AgentState(2, 3).lightened() == AgentState(2, 2)

    def test_lightened_from_light_rejected(self):
        with pytest.raises(ValueError):
            AgentState(0, 0).lightened()

    def test_with_colour_defaults_to_dark(self):
        assert AgentState(0, 0).with_colour(5) == AgentState(5, DARK)

    def test_with_colour_custom_shade(self):
        assert AgentState(0, 1).with_colour(2, shade=7) == AgentState(2, 7)

    def test_equality_is_structural(self):
        assert AgentState(1, 1) == AgentState(1, 1)
        assert AgentState(1, 1) != AgentState(1, 0)
        assert AgentState(1, 1) != AgentState(2, 1)

    def test_hashable(self):
        states = {AgentState(0, 0), AgentState(0, 0), AgentState(0, 1)}
        assert len(states) == 2

    def test_immutable(self):
        state = AgentState(0, 0)
        with pytest.raises(AttributeError):
            state.colour = 1


class TestConvenienceConstructors:
    def test_dark(self):
        assert dark(3) == AgentState(3, DARK)

    def test_light(self):
        assert light(3) == AgentState(3, LIGHT)

    def test_constants(self):
        assert LIGHT == 0
        assert DARK == 1
