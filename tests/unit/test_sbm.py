"""Unit tests for the stochastic-block-model topology generator."""

import numpy as np
import pytest

from repro.topology import stochastic_block_model


class TestStochasticBlockModel:
    def test_size_and_connectivity(self):
        topo = stochastic_block_model([20, 20], p_in=0.5, p_out=0.05,
                                      seed=0)
        assert topo.n == 40
        assert topo.is_connected()
        assert topo.community_sizes == [20, 20]

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            stochastic_block_model([10, 10], p_in=0.1, p_out=0.5)
        with pytest.raises(ValueError):
            stochastic_block_model([10, 10], p_in=1.2, p_out=0.1)

    def test_deterministic_given_seed(self):
        a = stochastic_block_model([15, 15], 0.5, 0.1, seed=3)
        b = stochastic_block_model([15, 15], 0.5, 0.1, seed=3)
        assert all(a.neighbours(v) == b.neighbours(v) for v in range(30))

    def test_community_structure_visible(self):
        """Within-community degree should dominate across-community
        degree when p_in >> p_out."""
        sizes = [30, 30]
        topo = stochastic_block_model(sizes, p_in=0.6, p_out=0.02, seed=1)
        internal, external = 0, 0
        for node in range(30):  # first community
            for other in topo.neighbours(node):
                if other < 30:
                    internal += 1
                else:
                    external += 1
        assert internal > 5 * external

    def test_unconnectable_parameters_raise(self):
        with pytest.raises(RuntimeError):
            stochastic_block_model(
                [25, 25], p_in=0.08, p_out=0.0, seed=2
            )

    def test_three_communities(self):
        topo = stochastic_block_model([10, 10, 10], 0.7, 0.1, seed=4)
        assert topo.n == 30
        assert topo.is_connected()
