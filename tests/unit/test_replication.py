"""Unit tests for the replication helpers."""

import numpy as np
import pytest

from repro.core.ablations import EagerRecolouring, UnweightedLightening
from repro.core.derandomised import DerandomisedDiversification
from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.experiments import runner as runner_module
from repro.experiments.replication import (
    Summary,
    is_aggregate_compatible,
    replicate,
    replicate_and_summarise,
    replicate_colour_counts,
    summarise,
)


class TestReplicate:
    def test_runs_requested_count(self):
        values = replicate(lambda rng: rng.random(), 7, base_seed=1)
        assert len(values) == 7

    def test_independent_streams(self):
        values = replicate(lambda rng: rng.random(), 5, base_seed=2)
        assert len(set(values)) == 5

    def test_deterministic_given_seed(self):
        a = replicate(lambda rng: rng.random(), 4, base_seed=3)
        b = replicate(lambda rng: rng.random(), 4, base_seed=3)
        assert a == b

    def test_none_skipped(self):
        values = replicate(
            lambda rng: None if rng.random() < 0.5 else 1.0,
            20, base_seed=4,
        )
        assert all(v == 1.0 for v in values)
        assert 0 < len(values) < 20

    def test_none_raises_when_not_skipping(self):
        with pytest.raises(ValueError):
            replicate(
                lambda rng: None, 3, base_seed=5, skip_none=False
            )

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda rng: 1.0, 0)


class TestSummarise:
    def test_basic_statistics(self):
        summary = summarise([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert summary.count == 4
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_interval_contains_truth_usually(self):
        """95% CI coverage spot-check: across 200 replications of a
        known-mean sample, the interval should cover ~95%."""
        rng = np.random.default_rng(0)
        covered = 0
        for _ in range(200):
            sample = rng.normal(10.0, 2.0, size=12)
            summary = summarise(sample)
            if summary.ci_low <= 10.0 <= summary.ci_high:
                covered += 1
        assert covered >= 175  # ≥ 87.5%, generous for 200 trials

    def test_single_value(self):
        summary = summarise([5.0])
        assert summary.mean == 5.0
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarise([])

    def test_confidence_validated(self):
        with pytest.raises(ValueError):
            summarise([1.0, 2.0], confidence=1.5)

    def test_as_row(self):
        summary = Summary(1.0, 0.5, 0.25, 0.5, 1.5, 4)
        assert summary.as_row() == [1.0, 0.5, 0.5, 1.5]


class TestReplicateAndSummarise:
    def test_end_to_end(self):
        summary = replicate_and_summarise(
            lambda rng: rng.normal(3.0, 0.1), 30, base_seed=6
        )
        assert summary.mean == pytest.approx(3.0, abs=0.1)
        assert summary.count == 30


class TestAggregateCompatibility:
    def test_default_protocol_is_compatible(self):
        assert is_aggregate_compatible(None)

    def test_diversification_is_compatible(self):
        weights = WeightTable([1.0, 2.0])
        assert is_aggregate_compatible(Diversification(weights))

    def test_unweighted_lightening_ablation_is_compatible(self):
        weights = WeightTable([1.0, 2.0])
        assert is_aggregate_compatible(UnweightedLightening(weights))

    def test_agent_level_protocols_fall_back(self):
        weights = WeightTable([1.0, 2.0])
        assert not is_aggregate_compatible(EagerRecolouring(weights))
        assert not is_aggregate_compatible(
            DerandomisedDiversification(WeightTable([1.0, 2.0]))
        )

    def test_topology_forces_fallback(self):
        assert not is_aggregate_compatible(None, topology=object())

    def test_schedule_stays_on_batched_path(self):
        """Interventions apply batch-wide now; a schedule no longer
        forces the scalar replication loop."""
        assert is_aggregate_compatible(None, schedule=object())


class _SpyBatchedEngine:
    """Wraps the real batched engine and records instantiation."""

    instances = 0

    def __init__(self, *args, **kwargs):
        type(self).instances += 1
        from repro.engine.batched import BatchedAggregateSimulation

        self._engine = BatchedAggregateSimulation(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._engine, name)


@pytest.fixture
def spy_batched(monkeypatch):
    _SpyBatchedEngine.instances = 0
    monkeypatch.setattr(
        runner_module, "BatchedAggregateSimulation", _SpyBatchedEngine
    )
    return _SpyBatchedEngine


class TestReplicateColourCountsRouting:
    def test_aggregate_protocol_takes_batched_path(self, spy_batched):
        weights = WeightTable([1.0, 2.0])
        counts = replicate_colour_counts(
            weights, 30, 500, replications=6, base_seed=0,
            protocol=Diversification(weights),
        )
        assert spy_batched.instances == 1
        assert counts.shape == (6, 2)
        assert (counts.sum(axis=1) == 30).all()

    def test_batched_false_uses_scalar_loop(self, spy_batched):
        weights = WeightTable([1.0, 2.0])
        counts = replicate_colour_counts(
            weights, 30, 500, replications=4, base_seed=0, batched=False
        )
        assert spy_batched.instances == 0
        assert counts.shape == (4, 2)
        assert (counts.sum(axis=1) == 30).all()

    def test_agent_level_protocol_falls_back(self, spy_batched):
        weights = WeightTable([1.0, 2.0])
        counts = replicate_colour_counts(
            weights, 20, 300, replications=3, base_seed=1,
            protocol=EagerRecolouring(weights),
        )
        assert spy_batched.instances == 0
        assert counts.shape == (3, 2)
        assert (counts.sum(axis=1) == 20).all()

    def test_topology_falls_back_to_agent_engine(self, spy_batched):
        from repro.topology.graphs import CycleGraph

        weights = WeightTable([1.0, 2.0])
        counts = replicate_colour_counts(
            weights, 20, 300, replications=3, base_seed=2,
            topology=CycleGraph(20),
        )
        assert spy_batched.instances == 0
        assert counts.shape == (3, 2)
        assert (counts.sum(axis=1) == 20).all()

    def test_schedule_fuses_batched_and_pads_new_colours(
        self, spy_batched
    ):
        from repro.adversary.interventions import AddColour
        from repro.adversary.schedule import InterventionSchedule

        weights = WeightTable([1.0, 2.0])
        schedule = InterventionSchedule(
            [(100, AddColour(weight=3.0, count=10))]
        )
        counts = replicate_colour_counts(
            weights, 30, 400, replications=3, base_seed=4,
            schedule=schedule,
        )
        assert spy_batched.instances == 1  # fused despite the schedule
        assert counts.shape == (3, 3)  # padded to the new colour set
        assert (counts.sum(axis=1) == 40).all()  # 30 + 10 injected
        assert weights.k == 2  # caller's table untouched

    def test_schedule_scalar_fallback_copies_protocol_per_run(self):
        """Regression: a *passed* weighted protocol used to share one
        weight table across the scalar fallback's replications, so an
        AddColour schedule compounded colours (k=3, then 4, ...)."""
        from repro.adversary.interventions import AddColour
        from repro.adversary.schedule import InterventionSchedule

        weights = WeightTable([1.0, 2.0])
        protocol = EagerRecolouring(weights)
        schedule = InterventionSchedule(
            [(100, AddColour(weight=3.0, count=5))]
        )
        counts = replicate_colour_counts(
            weights, 30, 400, replications=3, base_seed=4,
            protocol=protocol, schedule=schedule,
        )
        # One added colour per replication — not one, two, three.
        assert counts.shape == (3, 3)
        assert (counts.sum(axis=1) == 35).all()
        assert protocol.weights.k == 2  # caller's protocol untouched
        assert weights.k == 2

    def test_schedule_fused_array_copies_protocol(self):
        """The fused (R, n) array path under a schedule must mutate a
        copy of the passed protocol, not the caller's instance."""
        from repro.adversary.interventions import AddColour
        from repro.adversary.schedule import InterventionSchedule

        weights = WeightTable([1.0, 2.0])
        protocol = Diversification(weights)
        schedule = InterventionSchedule(
            [(100, AddColour(weight=3.0, count=5))]
        )
        counts = replicate_colour_counts(
            weights, 30, 400, replications=4, base_seed=4,
            protocol=protocol, schedule=schedule, engine="array",
        )
        assert counts.shape == (4, 3)
        assert (counts.sum(axis=1) == 35).all()
        assert protocol.weights.k == 2

    def test_deterministic_given_seed(self):
        weights = WeightTable([1.0, 2.0, 3.0])
        first = replicate_colour_counts(
            weights, 60, 1000, replications=8, base_seed=9
        )
        second = replicate_colour_counts(
            weights, 60, 1000, replications=8, base_seed=9
        )
        np.testing.assert_array_equal(first, second)

    def test_zero_replications_rejected(self):
        with pytest.raises(ValueError):
            replicate_colour_counts(
                WeightTable([1.0]), 10, 10, replications=0
            )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            replicate_colour_counts(
                WeightTable([1.0, 2.0]), 20, 100, replications=2,
                engine="bogus",
            )

    def test_forced_agent_engines_skip_aggregate_path(self, spy_batched):
        weights = WeightTable([1.0, 2.0])
        for engine in ("scalar", "array"):
            counts = replicate_colour_counts(
                weights, 30, 400, replications=4, base_seed=0,
                engine=engine,
            )
            assert counts.shape == (4, 2)
            assert (counts.sum(axis=1) == 30).all()
        assert spy_batched.instances == 0

    def test_lighten_override_requires_aggregate_path(self):
        """The lighten_probabilities override is only consumed by the
        aggregate engines; silently dropping it on the agent-level
        paths would simulate the wrong dynamics."""
        weights = WeightTable([1.0, 2.0])
        with pytest.raises(ValueError, match="lighten_probabilities"):
            replicate_colour_counts(
                weights, 30, 400, replications=2,
                lighten_probabilities=[1.0, 1.0], engine="array",
            )
        from repro.topology.graphs import CycleGraph

        with pytest.raises(ValueError, match="lighten_probabilities"):
            replicate_colour_counts(
                weights, 20, 200, replications=2,
                lighten_probabilities=[1.0, 1.0],
                topology=CycleGraph(20),
            )
