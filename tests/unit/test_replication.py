"""Unit tests for the replication helpers."""

import numpy as np
import pytest

from repro.experiments.replication import (
    Summary,
    replicate,
    replicate_and_summarise,
    summarise,
)


class TestReplicate:
    def test_runs_requested_count(self):
        values = replicate(lambda rng: rng.random(), 7, base_seed=1)
        assert len(values) == 7

    def test_independent_streams(self):
        values = replicate(lambda rng: rng.random(), 5, base_seed=2)
        assert len(set(values)) == 5

    def test_deterministic_given_seed(self):
        a = replicate(lambda rng: rng.random(), 4, base_seed=3)
        b = replicate(lambda rng: rng.random(), 4, base_seed=3)
        assert a == b

    def test_none_skipped(self):
        values = replicate(
            lambda rng: None if rng.random() < 0.5 else 1.0,
            20, base_seed=4,
        )
        assert all(v == 1.0 for v in values)
        assert 0 < len(values) < 20

    def test_none_raises_when_not_skipping(self):
        with pytest.raises(ValueError):
            replicate(
                lambda rng: None, 3, base_seed=5, skip_none=False
            )

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda rng: 1.0, 0)


class TestSummarise:
    def test_basic_statistics(self):
        summary = summarise([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert summary.count == 4
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_interval_contains_truth_usually(self):
        """95% CI coverage spot-check: across 200 replications of a
        known-mean sample, the interval should cover ~95%."""
        rng = np.random.default_rng(0)
        covered = 0
        for _ in range(200):
            sample = rng.normal(10.0, 2.0, size=12)
            summary = summarise(sample)
            if summary.ci_low <= 10.0 <= summary.ci_high:
                covered += 1
        assert covered >= 175  # ≥ 87.5%, generous for 200 trials

    def test_single_value(self):
        summary = summarise([5.0])
        assert summary.mean == 5.0
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarise([])

    def test_confidence_validated(self):
        with pytest.raises(ValueError):
            summarise([1.0, 2.0], confidence=1.5)

    def test_as_row(self):
        summary = Summary(1.0, 0.5, 0.25, 0.5, 1.5, 4)
        assert summary.as_row() == [1.0, 0.5, 0.5, 1.5]


class TestReplicateAndSummarise:
    def test_end_to_end(self):
        summary = replicate_and_summarise(
            lambda rng: rng.normal(3.0, 0.1), 30, base_seed=6
        )
        assert summary.mean == pytest.approx(3.0, abs=0.1)
        assert summary.count == 30
