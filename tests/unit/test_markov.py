"""Unit tests for the equilibrium Markov chain (Sec 2.4)."""

import numpy as np
import pytest

from repro.analysis.markov import (
    dark_state,
    equilibrium_chain,
    light_state,
    mixing_time,
    perturbed_chain,
    simulate_chain,
    stationary_distribution,
    theoretical_stationary,
    total_variation,
)
from repro.core.weights import WeightTable


@pytest.fixture
def chain(skewed_weights):
    return equilibrium_chain(skewed_weights, n=100)


class TestConstruction:
    def test_rows_sum_to_one(self, chain):
        np.testing.assert_allclose(chain.sum(axis=1), 1.0)

    def test_entries_non_negative(self, chain):
        assert (chain >= 0).all()

    def test_paper_entries(self, skewed_weights):
        n, w = 100, 6.0
        P = equilibrium_chain(skewed_weights, n)
        k = 3
        scale = 1.0 / ((1 + w) * n)
        # P(D_i, L_i) = 1/((1+w)n).
        assert P[dark_state(1), light_state(1, k)] == pytest.approx(scale)
        # P(L_j, D_i) = w_i/((1+w)n) for all j.
        assert P[light_state(0, k), dark_state(2)] == pytest.approx(3 * scale)
        assert P[light_state(2, k), dark_state(2)] == pytest.approx(3 * scale)
        # No dark-to-dark jumps between different colours.
        assert P[dark_state(0), dark_state(1)] == 0.0
        # No light-to-light jumps between different colours.
        assert P[light_state(0, k), light_state(1, k)] == 0.0

    def test_needs_two_agents(self, skewed_weights):
        with pytest.raises(ValueError):
            equilibrium_chain(skewed_weights, 1)


class TestStationarity:
    def test_theoretical_is_stationary(self, skewed_weights, chain):
        pi = theoretical_stationary(skewed_weights)
        np.testing.assert_allclose(pi @ chain, pi, atol=1e-14)

    def test_theoretical_sums_to_one(self, skewed_weights):
        assert theoretical_stationary(skewed_weights).sum() == pytest.approx(1)

    def test_eq_18_19_values(self, skewed_weights):
        pi = theoretical_stationary(skewed_weights)
        # pi(D_i) = w_i/(1+w) = w_i/7; pi(L_i) = (w_i/6)/7.
        np.testing.assert_allclose(pi[:3], [1 / 7, 2 / 7, 3 / 7])
        np.testing.assert_allclose(pi[3:], [1 / 42, 2 / 42, 3 / 42])

    def test_solver_matches_theory(self, skewed_weights, chain):
        pi_solved = stationary_distribution(chain)
        pi_theory = theoretical_stationary(skewed_weights)
        assert total_variation(pi_solved, pi_theory) < 1e-9

    def test_solver_validates_input(self):
        with pytest.raises(ValueError):
            stationary_distribution(np.ones((2, 3)))
        with pytest.raises(ValueError):
            stationary_distribution(np.array([[0.5, 0.2], [0.3, 0.7]]))


class TestTotalVariation:
    def test_identical(self):
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == 0

    def test_disjoint(self):
        assert total_variation([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_symmetry(self):
        p, q = [0.2, 0.8], [0.6, 0.4]
        assert total_variation(p, q) == total_variation(q, p)


class TestMixingTime:
    def test_small_chain_mixing(self):
        weights = WeightTable([1.0, 1.0])
        P = equilibrium_chain(weights, 10)
        t = mixing_time(P)
        # The chain holds w.p. 1 - O(1/n): mixing is Θ(n) here.
        assert 10 <= t <= 2000

    def test_mixing_time_grows_with_n(self):
        weights = WeightTable([1.0, 2.0])
        t_small = mixing_time(equilibrium_chain(weights, 10))
        t_large = mixing_time(equilibrium_chain(weights, 100))
        assert t_large > t_small

    def test_already_mixed_chain(self):
        P = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert mixing_time(P) == 1


class TestPerturbedChains:
    def test_row_stochastic(self, skewed_weights):
        err = 1e-4
        for sign in (+1, -1):
            for target_dark in (True, False):
                P = perturbed_chain(
                    skewed_weights, 100, 1, err, sign=sign,
                    target_dark=target_dark,
                )
                np.testing.assert_allclose(P.sum(axis=1), 1.0, atol=1e-12)
                assert (P >= 0).all()

    def test_sandwich_on_target_mass(self, skewed_weights):
        err = 1e-4
        pi = theoretical_stationary(skewed_weights)
        plus = stationary_distribution(
            perturbed_chain(skewed_weights, 100, 0, err, sign=+1)
        )
        minus = stationary_distribution(
            perturbed_chain(skewed_weights, 100, 0, err, sign=-1)
        )
        assert minus[0] <= pi[0] + 1e-12
        assert pi[0] <= plus[0] + 1e-12

    def test_shift_scales_with_err(self, skewed_weights):
        pi = theoretical_stationary(skewed_weights)
        small = stationary_distribution(
            perturbed_chain(skewed_weights, 100, 0, 1e-5, sign=+1)
        )
        large = stationary_distribution(
            perturbed_chain(skewed_weights, 100, 0, 1e-4, sign=+1)
        )
        assert total_variation(small, pi) < total_variation(large, pi)

    def test_oversized_err_rejected(self, skewed_weights):
        with pytest.raises(ValueError):
            perturbed_chain(skewed_weights, 100, 0, err=1.0)

    def test_invalid_sign_rejected(self, skewed_weights):
        with pytest.raises(ValueError):
            perturbed_chain(skewed_weights, 100, 0, 1e-5, sign=0)

    def test_unknown_colour_rejected(self, skewed_weights):
        with pytest.raises(ValueError):
            perturbed_chain(skewed_weights, 100, 7, 1e-5)


class TestSimulateChain:
    def test_visit_counts_sum(self, chain):
        visits = simulate_chain(chain, start=0, steps=5000, rng=0)
        assert visits.sum() == 5000

    def test_empirical_matches_stationary(self, skewed_weights):
        # Small n mixes fast; long run approximates pi.
        P = equilibrium_chain(skewed_weights, 8)
        visits = simulate_chain(P, start=0, steps=400_000, rng=1)
        empirical = visits / visits.sum()
        pi = theoretical_stationary(skewed_weights)
        assert total_variation(empirical, pi) < 0.02

    def test_deterministic_given_seed(self, chain):
        a = simulate_chain(chain, 0, 1000, rng=7)
        b = simulate_chain(chain, 0, 1000, rng=7)
        np.testing.assert_array_equal(a, b)
