"""Unit tests for the Def 1.1 property checkers."""

import numpy as np
import pytest

from repro.core.properties import (
    assess_goodness,
    diversity_bound,
    diversity_error,
    equilibrium_dark_counts,
    equilibrium_light_counts,
    fair_share_deviation,
    fairness_deviation,
    fairness_error,
    is_diverse,
    is_fair,
    is_sustainable,
    sustainability_invariant,
)
from repro.core.weights import WeightTable


class TestDiversity:
    def test_perfect_shares_zero_error(self, skewed_weights):
        counts = np.array([100, 200, 300])
        assert diversity_error(counts, skewed_weights) == pytest.approx(0.0)

    def test_known_deviation(self, skewed_weights):
        counts = np.array([160, 140, 300])  # +0.1 / -0.1 on colours 0,1
        assert diversity_error(counts, skewed_weights) == pytest.approx(0.1)

    def test_window_shape(self, skewed_weights):
        window = np.array([[100, 200, 300], [150, 150, 300]])
        dev = fair_share_deviation(window, skewed_weights)
        assert dev.shape == (2, 3)
        assert dev[0].max() == pytest.approx(0.0)

    def test_empty_population_rejected(self, skewed_weights):
        with pytest.raises(ValueError):
            diversity_error(np.zeros(3), skewed_weights)

    def test_bound_decreases_with_n(self):
        assert diversity_bound(10_000) < diversity_bound(100)

    def test_bound_requires_n_at_least_two(self):
        with pytest.raises(ValueError):
            diversity_bound(1)

    def test_is_diverse_true_for_balanced_window(self, skewed_weights):
        window = np.tile([100, 200, 300], (5, 1))
        assert is_diverse(window, skewed_weights)

    def test_is_diverse_false_for_skewed_window(self, skewed_weights):
        window = np.tile([500, 50, 50], (5, 1))
        assert not is_diverse(window, skewed_weights)


class TestFairness:
    def test_fair_occupancy_zero_error(self, skewed_weights):
        occupancy = np.tile(skewed_weights.fair_shares(), (10, 1))
        assert fairness_error(occupancy, skewed_weights) == pytest.approx(0)
        assert is_fair(occupancy, skewed_weights, tolerance=0.01)

    def test_unfair_agent_detected(self, skewed_weights):
        occupancy = np.tile(skewed_weights.fair_shares(), (10, 1))
        occupancy[3] = [1.0, 0.0, 0.0]  # one agent stuck on colour 0
        error = fairness_error(occupancy, skewed_weights)
        assert error == pytest.approx(1.0 - 1 / 6)
        assert not is_fair(occupancy, skewed_weights, tolerance=0.1)

    def test_rows_must_sum_to_one(self, skewed_weights):
        occupancy = np.full((4, 3), 0.5)
        with pytest.raises(ValueError):
            fairness_deviation(occupancy, skewed_weights)

    def test_occupancy_must_be_matrix(self, skewed_weights):
        with pytest.raises(ValueError):
            fairness_deviation(np.ones(3), skewed_weights)


class TestSustainability:
    def test_all_alive_window(self):
        assert is_sustainable(np.array([[1, 5], [2, 4], [1, 1]]))

    def test_vanished_colour_detected(self):
        assert not is_sustainable(np.array([[1, 5], [0, 6]]))

    def test_single_snapshot(self):
        assert is_sustainable(np.array([3, 3]))
        assert not is_sustainable(np.array([3, 0]))

    def test_dark_invariant(self):
        assert sustainability_invariant(np.array([[1, 1], [2, 1]]))
        assert not sustainability_invariant(np.array([[1, 0]]))


class TestEquilibriumTargets:
    def test_eq7_dark(self, skewed_weights):
        # n=700, w=6: A_i = w_i*700/7 = 100*w_i.
        np.testing.assert_allclose(
            equilibrium_dark_counts(700, skewed_weights), [100, 200, 300]
        )

    def test_eq7_light(self, skewed_weights):
        # a_i = (w_i/6)*700/7.
        np.testing.assert_allclose(
            equilibrium_light_counts(700, skewed_weights),
            [100 / 6, 200 / 6, 300 / 6],
        )

    def test_dark_plus_light_is_n(self, skewed_weights):
        total = (
            equilibrium_dark_counts(700, skewed_weights).sum()
            + equilibrium_light_counts(700, skewed_weights).sum()
        )
        assert total == pytest.approx(700)


class TestGoodness:
    def test_good_report(self, skewed_weights):
        window = np.tile([100, 200, 300], (8, 1))
        occupancy = np.tile(skewed_weights.fair_shares(), (6, 1))
        report = assess_goodness(window, skewed_weights, occupancy)
        assert report.diverse
        assert report.fair
        assert report.sustainable
        assert report.good

    def test_fairness_optional(self, skewed_weights):
        window = np.tile([100, 200, 300], (8, 1))
        report = assess_goodness(window, skewed_weights)
        assert report.fair is None
        assert report.good  # undetermined fairness does not block

    def test_unsustainable_window(self, skewed_weights):
        window = np.array([[100, 200, 300], [0, 300, 300]])
        report = assess_goodness(window, skewed_weights)
        assert not report.sustainable
        assert not report.good

    def test_not_diverse(self):
        weights = WeightTable.uniform(2)
        window = np.tile([90, 10], (4, 1))
        report = assess_goodness(window, weights)
        assert not report.diverse
        assert not report.good
