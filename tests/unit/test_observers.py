"""Unit tests for the engine observers."""

import numpy as np
import pytest

from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine.observers import (
    ConvergenceDetector,
    MinCountTracker,
    OccupancyTracker,
)
from repro.engine.population import Population
from repro.engine.simulator import Simulation


def build_simulation(n=12, weights=None, seed=0, observers=()):
    weights = weights or WeightTable.uniform(3)
    protocol = Diversification(weights)
    colours = [i % weights.k for i in range(n)]
    population = Population.from_colours(colours, protocol, k=weights.k)
    return Simulation(protocol, population, rng=seed, observers=list(observers))


class TestOccupancyTracker:
    def test_fractions_sum_to_one(self):
        tracker = OccupancyTracker()
        simulation = build_simulation(observers=[tracker])
        simulation.run(5000)
        occupancy = tracker.occupancy_fractions()
        np.testing.assert_allclose(occupancy.sum(axis=1), 1.0)

    def test_shape(self):
        tracker = OccupancyTracker()
        simulation = build_simulation(n=10, observers=[tracker])
        simulation.run(1000)
        assert tracker.occupancy_fractions().shape == (10, 3)
        assert tracker.shade_occupancy_fractions().shape == (10, 3, 2)

    def test_shade_fractions_sum_to_one(self):
        tracker = OccupancyTracker()
        simulation = build_simulation(observers=[tracker])
        simulation.run(5000)
        shade = tracker.shade_occupancy_fractions()
        np.testing.assert_allclose(shade.sum(axis=(1, 2)), 1.0)

    def test_no_time_elapsed_raises(self):
        tracker = OccupancyTracker()
        build_simulation(observers=[tracker])  # on_start not yet called
        with pytest.raises((ValueError, AttributeError, TypeError)):
            tracker.occupancy_fractions()

    def test_frozen_agent_full_occupancy(self):
        """An agent that never changes spends all time in its colour."""

        class ChangeLog:
            def __init__(self):
                self.agents = set()

            def on_start(self, simulation):
                pass

            def on_change(self, simulation, agent, old, new):
                self.agents.add(agent)

            def on_end(self, simulation):
                pass

        tracker = OccupancyTracker()
        log = ChangeLog()
        # A huge second weight keeps colour-1 agents almost always
        # frozen (lightening coin 1/500), so some agents never change.
        weights = WeightTable([1.0, 500.0])
        protocol = Diversification(weights)
        colours = [0] * 5 + [1] * 5
        population = Population.from_colours(colours, protocol)
        simulation = Simulation(
            protocol, population, rng=4, observers=[tracker, log]
        )
        simulation.run(2000)
        frozen = set(range(10)) - log.agents
        assert frozen, "no agent stayed frozen; pick another seed"
        occupancy = tracker.occupancy_fractions()
        for agent in frozen:
            assert occupancy[agent, colours[agent]] == pytest.approx(1.0)

    def test_accumulates_across_runs(self):
        tracker = OccupancyTracker()
        simulation = build_simulation(observers=[tracker])
        simulation.run(1000)
        first = tracker.occupancy_fractions().copy()
        simulation.run(4000)
        second = tracker.occupancy_fractions()
        assert second.shape == first.shape
        np.testing.assert_allclose(second.sum(axis=1), 1.0)


class TestMinCountTracker:
    def test_tracks_minimum(self):
        tracker = MinCountTracker()
        simulation = build_simulation(n=12, observers=[tracker])
        simulation.run(3000)
        final = simulation.population.colour_counts()
        assert (tracker.min_colour_counts <= final).all()

    def test_diversification_keeps_dark_counts_positive(self):
        tracker = MinCountTracker()
        simulation = build_simulation(n=12, observers=[tracker])
        simulation.run(5000)
        assert (tracker.min_dark_counts >= 1).all()

    def test_grows_with_new_colours(self):
        tracker = MinCountTracker()
        weights = WeightTable.uniform(2)
        simulation = build_simulation(
            n=8, weights=weights, observers=[tracker]
        )
        simulation.run(100)
        weights.add_colour(1.0)
        from repro.core.state import dark

        simulation.population.add_agent(dark(2))
        simulation.run(100)
        assert len(tracker.min_colour_counts) == 3


class TestConvergenceDetector:
    def test_hits_eventually(self):
        weights = WeightTable.uniform(2)
        detector = ConvergenceDetector(weights, bound=0.2)
        protocol = Diversification(weights)
        population = Population.from_colours(
            [0] * 19 + [1], protocol, k=2
        )
        simulation = Simulation(
            protocol, population, rng=5, observers=[detector]
        )
        simulation.run(20_000)
        assert detector.hit_time is not None
        assert 0 <= detector.hit_time <= 20_000

    def test_immediate_hit_at_start(self):
        weights = WeightTable.uniform(2)
        detector = ConvergenceDetector(weights, bound=0.5)
        simulation = build_simulation(
            n=10, weights=weights, observers=[detector]
        )
        simulation.run(1)
        assert detector.hit_time == 0

    def test_no_hit_with_impossible_bound(self):
        weights = WeightTable.uniform(3)
        detector = ConvergenceDetector(weights, bound=-1.0)
        simulation = build_simulation(observers=[detector])
        simulation.run(500)
        assert detector.hit_time is None
