"""Unit tests for the multi-shade aggregate engine (derandomised)."""

import numpy as np
import pytest

from repro.core.weights import WeightTable
from repro.engine.multishade import MultiShadeAggregate


def build(weights=None, counts=(10, 10, 10), seed=0):
    weights = weights or WeightTable([1.0, 2.0, 3.0])
    return MultiShadeAggregate(weights, colour_counts=counts, rng=seed)


class TestConstruction:
    def test_rejects_fractional_weights(self):
        with pytest.raises(ValueError):
            MultiShadeAggregate(
                WeightTable([1.5, 2.0]), colour_counts=[5, 5]
            )

    def test_counts_length_validated(self):
        with pytest.raises(ValueError):
            MultiShadeAggregate(WeightTable([1.0, 2.0]), colour_counts=[5])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            MultiShadeAggregate(
                WeightTable([1.0, 2.0]), colour_counts=[5, -1]
            )

    def test_needs_two_agents(self):
        with pytest.raises(ValueError):
            MultiShadeAggregate(WeightTable([1.0]), colour_counts=[1])

    def test_agents_start_at_full_shade(self):
        engine = build()
        assert engine.shade_counts(0) == [0, 10]
        assert engine.shade_counts(1) == [0, 0, 10]
        assert engine.shade_counts(2) == [0, 0, 0, 10]

    def test_initial_views(self):
        engine = build()
        np.testing.assert_array_equal(engine.colour_counts(), [10, 10, 10])
        np.testing.assert_array_equal(engine.dark_counts(), [10, 10, 10])
        np.testing.assert_array_equal(engine.light_counts(), [0, 0, 0])


class TestDynamics:
    def test_population_conserved(self):
        engine = build()
        engine.run(50_000)
        assert engine.n == 30

    def test_run_reaches_horizon(self):
        engine = build()
        engine.run(12_345)
        assert engine.time == 12_345

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            build().run(-1)

    def test_shades_stay_in_range(self):
        engine = build(seed=1)
        for _ in range(3000):
            engine.step()
        for colour in range(engine.k):
            row = engine.shade_counts(colour)
            assert len(row) == int(engine.weights.weight(colour)) + 1
            assert all(c >= 0 for c in row)

    def test_sustainability_invariant(self):
        """A lone positive-shade agent of a colour can never lose its
        last committed member (decrement needs a same-colour partner
        with positive shade)."""
        engine = build(counts=(1, 1, 58), seed=2)
        engine.run(100_000)
        assert (engine.dark_counts() >= 1).all()

    def test_seed_reproducibility(self):
        a = build(seed=9)
        b = build(seed=9)
        a.run(20_000)
        b.run(20_000)
        np.testing.assert_array_equal(a.colour_counts(), b.colour_counts())
        for colour in range(3):
            assert a.shade_counts(colour) == b.shade_counts(colour)

    def test_step_mode_conserves(self):
        engine = build(seed=3)
        for _ in range(2000):
            engine.step()
        assert engine.n == 30

    def test_converges_to_fair_shares(self):
        weights = WeightTable([1.0, 2.0, 3.0])
        engine = MultiShadeAggregate(
            weights, colour_counts=[598, 1, 1], rng=4
        )
        engine.run(3_000_000)
        shares = engine.colour_counts() / engine.n
        np.testing.assert_allclose(
            shares, weights.fair_shares(), atol=0.08
        )

    def test_unit_weights_behave_like_uniform_partition(self):
        weights = WeightTable.uniform(4)
        engine = MultiShadeAggregate(
            weights, colour_counts=[97, 1, 1, 1], rng=5
        )
        engine.run(400_000)
        counts = engine.colour_counts()
        assert counts.max() - counts.min() < 40
