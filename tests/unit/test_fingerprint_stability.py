"""Stability contract of the cache fingerprints (satellite of the
shard-cache PR): keys must be invariant to dict insertion order and to
Python hash randomisation, and must change when the measurement's
source or the backend dtype table changes."""

import importlib.util
import os
import pathlib
import subprocess
import sys
import textwrap

import numpy as np

import repro
from repro.engine.backend import Backend, DtypeTable
from repro.experiments.cache import (
    _module_source_hash,
    measurement_fingerprint,
    shard_key,
    spec_fingerprint,
)
from repro.experiments.pipeline import ScenarioSpec, Shard, plan


def _measure(params, rng):
    return {"value": float(rng.random())}


def _spec(fixed):
    return ScenarioSpec(
        name="stability",
        measure=_measure,
        grid={"a": (1, 2)},
        fixed=fixed,
        replications=1,
        base_seed=5,
    )


class TestDictOrderInvariance:
    def test_spec_fingerprint_ignores_fixed_param_order(self):
        forward = _spec({"x": 1, "y": 2, "z": 3})
        backward = _spec({"z": 3, "y": 2, "x": 1})
        assert spec_fingerprint(forward) == spec_fingerprint(backward)

    def test_shard_key_ignores_params_insertion_order(self):
        spec = _spec({"x": 1, "y": 2})
        shard = plan(spec).shards[0]
        reordered = Shard(
            index=shard.index,
            cell=shard.cell,
            replication=shard.replication,
            params=dict(reversed(list(shard.params.items()))),
            seed=shard.seed,
        )
        assert list(reordered.params) != list(shard.params)
        assert shard_key(spec, shard) == shard_key(spec, reordered)


_SUBPROCESS_SCRIPT = textwrap.dedent(
    """
    from repro.experiments.cache import shard_key, spec_fingerprint
    from repro.experiments.fusion import measure_sweep_final_counts
    from repro.experiments.pipeline import ScenarioSpec, plan

    spec = ScenarioSpec(
        name="hashseed-probe",
        measure=measure_sweep_final_counts,
        grid={"n": (40, 60), "rounds": (2,)},
        fixed={"vector": (1.0, 2.0), "start": "worst"},
        replications=2,
        base_seed=77,
    )
    print(spec_fingerprint(spec))
    for shard in plan(spec).shards:
        print(shard_key(spec, shard))
    """
)


class TestHashRandomisationInvariance:
    def test_keys_survive_pythonhashseed_changes(self):
        """The same spec must produce byte-identical fingerprints and
        shard keys in interpreters with different hash seeds — else a
        cache directory goes cold on every new process."""
        src = pathlib.Path(repro.__file__).resolve().parent.parent
        outputs = []
        for hash_seed in ("0", "1", "random"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = str(src)
            result = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
        assert len(outputs[0].split()) == 1 + 4  # fingerprint + 4 shards


def _load_temp_module(path, name):
    """Import ``path`` under ``name``, replacing any previous import
    and dropping the memoised source hash for it."""
    sys.modules.pop(name, None)
    _module_source_hash.cache_clear()
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestSourceSensitivity:
    def test_measurement_source_change_invalidates(self, tmp_path):
        """Two measurements with the same module:qualname reference but
        different module source must fingerprint differently."""
        name = "repro_test_cache_probe_module"
        before = tmp_path / "before" / f"{name}.py"
        after = tmp_path / "after" / f"{name}.py"
        before.parent.mkdir()
        after.parent.mkdir()
        before.write_text(
            "def probe(params, rng):\n    return {'v': 1}\n"
        )
        after.write_text(
            "def probe(params, rng):\n    return {'v': 2}\n"
        )
        try:
            first = measurement_fingerprint(
                _load_temp_module(before, name).probe
            )
            second = measurement_fingerprint(
                _load_temp_module(after, name).probe
            )
        finally:
            sys.modules.pop(name, None)
            _module_source_hash.cache_clear()
        assert first["ref"] == second["ref"]
        assert first["source"] != second["source"]
        assert None not in (first["source"], second["source"])

    def test_dtype_table_change_invalidates(self):
        spec = _spec({})
        shard = plan(spec).shards[0]
        wide = Backend(
            "numpy",
            np,
            DtypeTable(np.int64, np.float64, np.uint64, np.bool_),
        )
        narrow = Backend(
            "numpy",
            np,
            DtypeTable(np.int32, np.float32, np.uint32, np.bool_),
        )
        assert shard_key(spec, shard, backend=wide) != shard_key(
            spec, shard, backend=narrow
        )
