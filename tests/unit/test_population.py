"""Unit tests for the Population container."""

import numpy as np
import pytest

from repro.core.diversification import Diversification
from repro.core.state import AgentState, dark, light
from repro.core.weights import WeightTable
from repro.engine.population import Population


@pytest.fixture
def population():
    return Population([dark(0), dark(0), light(1), dark(2)])


class TestConstruction:
    def test_counts_initialised(self, population):
        np.testing.assert_array_equal(
            population.colour_counts(), [2, 1, 1]
        )
        np.testing.assert_array_equal(population.dark_counts(), [2, 0, 1])
        np.testing.assert_array_equal(population.light_counts(), [0, 1, 0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Population([])

    def test_explicit_k_pads_counts(self):
        population = Population([dark(0)], k=3)
        assert population.k == 3
        np.testing.assert_array_equal(population.colour_counts(), [1, 0, 0])

    def test_k_smaller_than_colours_rejected(self):
        with pytest.raises(ValueError):
            Population([dark(5)], k=2)

    def test_from_colours_uses_protocol_initial_state(self):
        weights = WeightTable([1.0, 2.0])
        protocol = Diversification(weights)
        population = Population.from_colours([0, 1, 1], protocol)
        assert population.state_of(1) == AgentState(1, 1)
        np.testing.assert_array_equal(population.dark_counts(), [1, 2])


class TestAccessors:
    def test_state_of(self, population):
        assert population.state_of(2) == light(1)

    def test_colour_and_shade_of(self, population):
        assert population.colour_of(3) == 2
        assert population.shade_of(2) == 0

    def test_states_snapshot_is_copy(self, population):
        snapshot = population.states()
        snapshot[0] = dark(2)
        assert population.state_of(0) == dark(0)

    def test_n(self, population):
        assert population.n == 4


class TestSetState:
    def test_counts_follow_state_change(self, population):
        old = population.set_state(2, dark(0))
        assert old == light(1)
        np.testing.assert_array_equal(population.colour_counts(), [3, 0, 1])
        np.testing.assert_array_equal(population.dark_counts(), [3, 0, 1])

    def test_shade_only_change(self, population):
        population.set_state(0, light(0))
        np.testing.assert_array_equal(population.dark_counts(), [1, 0, 1])
        np.testing.assert_array_equal(population.light_counts(), [1, 1, 0])

    def test_new_colour_grows_k(self, population):
        population.set_state(0, dark(5))
        assert population.k == 6
        assert population.colour_counts()[5] == 1

    def test_total_preserved(self, population):
        population.set_state(1, light(2))
        assert population.colour_counts().sum() == 4


class TestAddAgent:
    def test_add_agent_returns_index(self, population):
        index = population.add_agent(dark(1))
        assert index == 4
        assert population.n == 5
        assert population.colour_counts()[1] == 2

    def test_add_agent_new_colour(self, population):
        population.add_agent(dark(4))
        assert population.k == 5
        np.testing.assert_array_equal(
            population.colour_counts(), [2, 1, 1, 0, 1]
        )

    def test_multi_shade_counts_as_dark(self, population):
        population.add_agent(AgentState(1, 3))
        assert population.dark_counts()[1] == 1
