"""Unit tests for the export helpers (CSV/JSON serialisation)."""

import csv
import io
import json

import numpy as np
import pytest

from repro.experiments.export import (
    record_to_csv,
    record_to_json,
    save_table,
    table_to_csv,
    table_to_json,
)
from repro.experiments.runner import run_aggregate
from repro.experiments.table import ExperimentTable


@pytest.fixture
def table():
    table = ExperimentTable("E0", "demo table", ["n", "err", "ok"])
    table.add_row(128, np.float64(0.125), np.bool_(True))
    table.add_row(256, 0.0625, False)
    table.add_note("a note")
    return table


@pytest.fixture
def record(skewed_weights):
    return run_aggregate(
        skewed_weights, n=60, steps=3000, seed=0, record_interval=500
    )


class TestTableCsv:
    def test_roundtrip_via_csv_reader(self, table):
        rows = list(csv.reader(io.StringIO(table_to_csv(table))))
        assert rows[0] == ["n", "err", "ok"]
        assert rows[1] == ["128", "0.125", "True"]
        assert len(rows) == 3

    def test_numpy_scalars_converted(self, table):
        text = table_to_csv(table)
        assert "np.float64" not in text
        assert "np.True_" not in text


class TestTableJson:
    def test_valid_json_with_metadata(self, table):
        payload = json.loads(table_to_json(table))
        assert payload["experiment"] == "E0"
        assert payload["headers"] == ["n", "err", "ok"]
        assert payload["rows"][0] == [128, 0.125, True]
        assert payload["notes"] == ["a note"]


class TestSaveTable:
    def test_writes_all_formats(self, table, tmp_path):
        paths = save_table(table, tmp_path)
        names = {p.name for p in paths}
        assert names == {"e0.txt", "e0.csv", "e0.json"}
        for path in paths:
            assert path.exists()
            assert path.stat().st_size > 0

    def test_subset_of_formats(self, table, tmp_path):
        paths = save_table(table, tmp_path, formats=("json",))
        assert len(paths) == 1
        assert paths[0].suffix == ".json"

    def test_unknown_format_rejected(self, table, tmp_path):
        with pytest.raises(ValueError):
            save_table(table, tmp_path, formats=("yaml",))


class TestRecordExport:
    def test_csv_header_and_width(self, record):
        rows = list(csv.reader(io.StringIO(record_to_csv(record))))
        assert rows[0] == [
            "time", "C_0", "C_1", "C_2",
            "A_0", "A_1", "A_2", "a_0", "a_1", "a_2",
        ]
        assert len(rows) == len(record.times) + 1
        # Population conserved in every exported row.
        for row in rows[1:]:
            assert sum(int(v) for v in row[1:4]) == 60

    def test_json_payload(self, record):
        payload = json.loads(record_to_json(record))
        assert payload["n"] == 60
        assert payload["k"] == 3
        assert payload["weights"] == [1.0, 2.0, 3.0]
        assert len(payload["times"]) == len(payload["colour_counts"])
