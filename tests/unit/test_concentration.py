"""Unit tests for the concentration inequalities (Lemma 2.11, Thm A.2)."""

import numpy as np
import pytest

from repro.analysis.concentration import (
    azuma_hoeffding,
    chung_lu_tail,
    contraction_expectation_bound,
    halving_time,
    markov_chain_chernoff,
    markov_visit_halfwidth,
)


class TestChungLuTail:
    def test_matches_eq_16(self):
        lam, alpha, delta, gamma = 10.0, 0.1, 2.0, 1.0
        expected = np.exp(
            -(lam**2 / 2) / (delta**2 / (2 * alpha - alpha**2) + lam * gamma / 3)
        )
        assert chung_lu_tail(lam, alpha, delta, gamma) == pytest.approx(
            expected
        )

    def test_decreasing_in_lambda(self):
        values = [chung_lu_tail(lam, 0.1, 2.0, 1.0) for lam in (1, 5, 25)]
        assert values[0] > values[1] > values[2]

    def test_bounded_by_one(self):
        assert chung_lu_tail(0.01, 0.5, 10.0, 10.0) <= 1.0

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            chung_lu_tail(1.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            chung_lu_tail(-1.0, 0.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            chung_lu_tail(1.0, 0.5, -1.0, 1.0)

    def test_dominates_contracting_process_tail(self):
        """Empirical check: simulate M(t+1) = (1-a)M(t) + noise and
        verify the bound dominates the observed tail frequency."""
        rng = np.random.default_rng(0)
        alpha, beta, gamma = 0.2, 1.0, 1.0
        runs, horizon = 2000, 60
        finals = np.empty(runs)
        for r in range(runs):
            m = 0.0
            for _ in range(horizon):
                # bounded, conditionally mean <= (1-alpha) m + beta
                m = (1 - alpha) * m + beta + rng.uniform(-gamma, gamma)
                m = max(m, 0.0)
            finals[r] = m
        mean = finals.mean()
        lam = 2.5
        observed = (finals >= mean + lam).mean()
        bound = chung_lu_tail(lam, alpha, delta=gamma, gamma=gamma)
        assert observed <= bound + 0.01


class TestContractionBound:
    def test_formula(self):
        assert contraction_expectation_bound(
            100.0, 0.5, 2.0, 3
        ) == pytest.approx(100 * 0.125 + 4.0)

    def test_limit_is_beta_over_alpha(self):
        value = contraction_expectation_bound(1000.0, 0.3, 2.0, 500)
        assert value == pytest.approx(2.0 / 0.3, rel=1e-6)

    def test_validates(self):
        with pytest.raises(ValueError):
            contraction_expectation_bound(1.0, 1.5, 1.0, 1)
        with pytest.raises(ValueError):
            contraction_expectation_bound(-1.0, 0.5, 1.0, 1)


class TestHalvingTime:
    def test_halving_suffices(self):
        alpha = 0.01
        t = halving_time(alpha)
        assert (1 - alpha) ** t <= 1 / 8

    def test_scales_inversely_with_alpha(self):
        assert halving_time(0.001) > halving_time(0.1)


class TestMarkovChernoff:
    def test_matches_formula(self):
        value = markov_chain_chernoff(0.2, 10_000, 50, 0.1)
        expected = np.exp(-(0.01 * 0.2 * 10_000) / (72 * 50))
        assert value == pytest.approx(expected)

    def test_decreasing_in_t(self):
        a = markov_chain_chernoff(0.2, 1000, 10, 0.2)
        b = markov_chain_chernoff(0.2, 100_000, 10, 0.2)
        assert b < a

    def test_validates(self):
        with pytest.raises(ValueError):
            markov_chain_chernoff(0.0, 100, 10, 0.1)
        with pytest.raises(ValueError):
            markov_chain_chernoff(0.5, 100, 10, 1.5)

    def test_halfwidth_inversion(self):
        pi, t, tmix, failure = 0.25, 100_000, 20, 1e-3
        halfwidth = markov_visit_halfwidth(pi, t, tmix, failure)
        delta = halfwidth / (pi * t)
        recovered = markov_chain_chernoff(pi, t, tmix, min(delta, 0.999))
        assert recovered <= failure * 1.01 or delta >= 0.999


class TestAzumaHoeffding:
    def test_formula(self):
        assert azuma_hoeffding(100, 20.0) == pytest.approx(
            np.exp(-400 / 200)
        )

    def test_dominates_simple_walk(self):
        rng = np.random.default_rng(1)
        ell = 200
        sums = rng.choice([-1, 1], size=(5000, ell)).sum(axis=1)
        deviation = 30.0
        observed = (sums <= -deviation).mean()
        assert observed <= azuma_hoeffding(ell, deviation) + 0.01

    def test_validates(self):
        with pytest.raises(ValueError):
            azuma_hoeffding(0, 1.0)
