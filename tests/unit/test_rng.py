"""Unit tests for RNG utilities."""

import numpy as np
import pytest

from repro.engine.rng import make_rng, seed_stream, spawn, spawn_sequences


class TestSpawnSequences:
    def test_matches_spawn_on_a_fresh_generator(self):
        # The pipeline relies on this equivalence to reproduce legacy
        # replication streams shard by shard.
        via_spawn = [g.random() for g in spawn(make_rng(42), 3)]
        via_sequences = [
            np.random.default_rng(s).random()
            for s in spawn_sequences(42, 3)
        ]
        assert via_spawn == via_sequences

    def test_prefix_stable(self):
        first_two = spawn_sequences(7, 2)
        first_five = spawn_sequences(7, 5)
        for short, long in zip(first_two, first_five):
            assert (
                np.random.default_rng(short).random()
                == np.random.default_rng(long).random()
            )

    def test_does_not_mutate_a_seed_sequence_argument(self):
        parent = np.random.SeedSequence(11)
        spawn_sequences(parent, 3)
        assert parent.n_children_spawned == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_sequences(0, -1)


class TestMakeRng:
    def test_seed_reproducible(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_generator(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(make_rng(0), 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn(make_rng(0), 3)
        values = {child.random() for child in children}
        assert len(values) == 3

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn(make_rng(9), 3)]
        b = [g.random() for g in spawn(make_rng(9), 3)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)


class TestSeedStream:
    def test_deterministic(self):
        stream_a = seed_stream(42)
        stream_b = seed_stream(42)
        assert [next(stream_a) for _ in range(5)] == [
            next(stream_b) for _ in range(5)
        ]

    def test_distinct_values(self):
        stream = seed_stream(7)
        values = [next(stream) for _ in range(50)]
        assert len(set(values)) == 50

    def test_values_fit_in_63_bits(self):
        stream = seed_stream(1)
        assert all(0 <= next(stream) < 2**63 for _ in range(20))
