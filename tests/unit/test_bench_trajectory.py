"""The benchmark trajectory appender/comparator in benchmarks/collect.py."""

import importlib.util
import json
import pathlib
import sys

import pytest

COLLECT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "benchmarks"
    / "collect.py"
)


@pytest.fixture(scope="module")
def collect_module():
    spec = importlib.util.spec_from_file_location("bench_collect", COLLECT_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_collect"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("bench_collect", None)


def summary_with(speedups):
    return {
        "format": "repro-bench-summary/v1",
        "benchmarks": {},
        "errors": {},
        "speedups": {
            name: {"speedup": value} for name, value in speedups.items()
        },
    }


class TestTrajectory:
    def test_append_creates_and_grows(self, collect_module, tmp_path):
        path = tmp_path / "traj.json"
        collect_module.append_trajectory(
            summary_with({"a": 2.0}), path, "first"
        )
        doc = collect_module.append_trajectory(
            summary_with({"a": 2.1}), path, "second"
        )
        assert doc["format"] == collect_module.TRAJECTORY_FORMAT
        assert [entry["label"] for entry in doc["entries"]] == [
            "first", "second",
        ]
        on_disk = json.loads(path.read_text())
        assert on_disk == doc

    def test_wrong_format_rejected(self, collect_module, tmp_path):
        path = tmp_path / "traj.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError):
            collect_module.load_trajectory(path)

    def test_committed_seed_file_is_valid(self, collect_module):
        doc = collect_module.load_trajectory(
            COLLECT_PATH.parent / "BENCH_TRAJECTORY.json"
        )
        assert isinstance(doc["entries"], list)


class TestCompare:
    def test_empty_trajectory_never_regresses(self, collect_module):
        trajectory = {"format": collect_module.TRAJECTORY_FORMAT, "entries": []}
        assert (
            collect_module.compare_with_last(
                summary_with({"a": 1.0}), trajectory
            )
            == []
        )

    def test_flags_only_drops_beyond_threshold(self, collect_module, tmp_path):
        path = tmp_path / "traj.json"
        collect_module.append_trajectory(
            summary_with({"fast": 4.0, "steady": 2.0, "gone": 1.5}),
            path,
            "base",
        )
        trajectory = collect_module.load_trajectory(path)
        current = summary_with({"fast": 3.0, "steady": 1.7, "new": 9.0})
        warnings = collect_module.compare_with_last(current, trajectory)
        # fast dropped 25% (> 20%): flagged; steady dropped 15%: not;
        # gone/new have no counterpart: not.
        assert len(warnings) == 1
        assert warnings[0].startswith("fast:")

    def test_threshold_is_configurable(self, collect_module, tmp_path):
        path = tmp_path / "traj.json"
        collect_module.append_trajectory(
            summary_with({"a": 2.0}), path, "base"
        )
        trajectory = collect_module.load_trajectory(path)
        current = summary_with({"a": 1.8})
        assert collect_module.compare_with_last(current, trajectory) == []
        assert collect_module.compare_with_last(
            current, trajectory, threshold=0.05
        )

    def test_cli_trajectory_flow(self, collect_module, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "bench_x.json").write_text(
            json.dumps({"speedup": 3.0, "target_speedup": 2.0})
        )
        traj = tmp_path / "traj.json"
        code = collect_module.main(
            [str(results), "--trajectory", str(traj), "--label", "run-1"]
        )
        assert code == 0
        (results / "bench_x.json").write_text(json.dumps({"speedup": 1.0}))
        code = collect_module.main(
            [str(results), "--trajectory", str(traj), "--label", "run-2"]
        )
        assert code == 0  # regression is non-blocking
        out = capsys.readouterr().out
        assert "PERF REGRESSION" in out
        doc = collect_module.load_trajectory(traj)
        assert len(doc["entries"]) == 2
