"""The benchmark trajectory appender/comparator in benchmarks/collect.py."""

import importlib.util
import json
import pathlib
import sys

import pytest

COLLECT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "benchmarks"
    / "collect.py"
)


@pytest.fixture(scope="module")
def collect_module():
    spec = importlib.util.spec_from_file_location("bench_collect", COLLECT_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_collect"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("bench_collect", None)


def summary_with(speedups):
    return {
        "format": "repro-bench-summary/v1",
        "benchmarks": {},
        "errors": {},
        "speedups": {
            name: {"speedup": value} for name, value in speedups.items()
        },
    }


class TestTrajectory:
    def test_append_creates_and_grows(self, collect_module, tmp_path):
        path = tmp_path / "traj.json"
        collect_module.append_trajectory(
            summary_with({"a": 2.0}), path, "first"
        )
        doc = collect_module.append_trajectory(
            summary_with({"a": 2.1}), path, "second"
        )
        assert doc["format"] == collect_module.TRAJECTORY_FORMAT
        assert [entry["label"] for entry in doc["entries"]] == [
            "first", "second",
        ]
        on_disk = json.loads(path.read_text())
        assert on_disk == doc

    def test_wrong_format_rejected(self, collect_module, tmp_path):
        path = tmp_path / "traj.json"
        path.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError):
            collect_module.load_trajectory(path)

    def test_committed_seed_file_is_valid(self, collect_module):
        doc = collect_module.load_trajectory(
            COLLECT_PATH.parent / "BENCH_TRAJECTORY.json"
        )
        assert isinstance(doc["entries"], list)


class TestCompare:
    def test_empty_trajectory_never_regresses(self, collect_module):
        trajectory = {"format": collect_module.TRAJECTORY_FORMAT, "entries": []}
        assert (
            collect_module.compare_with_last(
                summary_with({"a": 1.0}), trajectory
            )
            == []
        )

    def test_flags_only_drops_beyond_threshold(self, collect_module, tmp_path):
        path = tmp_path / "traj.json"
        collect_module.append_trajectory(
            summary_with({"fast": 4.0, "steady": 2.0, "gone": 1.5}),
            path,
            "base",
        )
        trajectory = collect_module.load_trajectory(path)
        current = summary_with({"fast": 3.0, "steady": 1.7, "new": 9.0})
        warnings = collect_module.compare_with_last(current, trajectory)
        # fast dropped 25% (> 20%): flagged; steady dropped 15%: not;
        # gone/new have no counterpart: not.
        assert len(warnings) == 1
        assert warnings[0].startswith("fast:")

    def test_threshold_is_configurable(self, collect_module, tmp_path):
        path = tmp_path / "traj.json"
        collect_module.append_trajectory(
            summary_with({"a": 2.0}), path, "base"
        )
        trajectory = collect_module.load_trajectory(path)
        current = summary_with({"a": 1.8})
        assert collect_module.compare_with_last(current, trajectory) == []
        assert collect_module.compare_with_last(
            current, trajectory, threshold=0.05
        )

    def test_append_stamps_machine_signature(self, collect_module, tmp_path):
        path = tmp_path / "traj.json"
        doc = collect_module.append_trajectory(
            summary_with({"a": 2.0}), path, "base"
        )
        machine = doc["entries"][0]["machine"]
        assert machine == collect_module.machine_signature()
        assert set(machine) == {"cpu_count", "platform"}

    def test_cross_machine_baseline_is_skipped(self, collect_module):
        """A 4-core runner's speedups are not a baseline for a 1-core
        box — a structural 4x->1x drop is noise, not a regression."""
        four_core = {"cpu_count": 4, "platform": "Linux-x86_64"}
        one_core = {"cpu_count": 1, "platform": "Linux-x86_64"}
        trajectory = {
            "format": collect_module.TRAJECTORY_FORMAT,
            "entries": [
                {
                    "label": "ci",
                    "machine": four_core,
                    "speedups": {"a": {"speedup": 4.0}},
                }
            ],
        }
        current = summary_with({"a": 1.1})
        assert (
            collect_module.compare_with_last(
                current, trajectory, machine=one_core
            )
            == []
        )
        assert collect_module.compare_with_last(
            current, trajectory, machine=four_core
        )

    def test_legacy_unstamped_entries_never_serve_as_baseline(
        self, collect_module
    ):
        trajectory = {
            "format": collect_module.TRAJECTORY_FORMAT,
            "entries": [
                {"label": "pr7", "speedups": {"a": {"speedup": 4.0}}}
            ],
        }
        assert collect_module.baseline_entry(trajectory) is None
        assert (
            collect_module.compare_with_last(
                summary_with({"a": 1.0}), trajectory
            )
            == []
        )

    def test_baseline_is_newest_same_machine_entry(self, collect_module):
        mine = {"cpu_count": 1, "platform": "Linux-x86_64"}
        other = {"cpu_count": 8, "platform": "Darwin-arm64"}
        trajectory = {
            "format": collect_module.TRAJECTORY_FORMAT,
            "entries": [
                {"label": "old", "machine": mine,
                 "speedups": {"a": {"speedup": 4.0}}},
                {"label": "mid", "machine": mine,
                 "speedups": {"a": {"speedup": 2.0}}},
                {"label": "new-other", "machine": other,
                 "speedups": {"a": {"speedup": 9.0}}},
            ],
        }
        baseline = collect_module.baseline_entry(trajectory, machine=mine)
        assert baseline["label"] == "mid"
        # vs "mid" (2.0x) a 1.9x run is fine; vs "old" (4.0x) it would
        # have been flagged.
        assert (
            collect_module.compare_with_last(
                summary_with({"a": 1.9}), trajectory, machine=mine
            )
            == []
        )

    def test_cli_trajectory_flow(self, collect_module, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "bench_x.json").write_text(
            json.dumps({"speedup": 3.0, "target_speedup": 2.0})
        )
        traj = tmp_path / "traj.json"
        code = collect_module.main(
            [str(results), "--trajectory", str(traj), "--label", "run-1"]
        )
        assert code == 0
        (results / "bench_x.json").write_text(json.dumps({"speedup": 1.0}))
        code = collect_module.main(
            [str(results), "--trajectory", str(traj), "--label", "run-2"]
        )
        assert code == 0  # regression is non-blocking
        out = capsys.readouterr().out
        assert "PERF REGRESSION" in out
        doc = collect_module.load_trajectory(traj)
        assert len(doc["entries"]) == 2


class TestCacheCounters:
    def test_collect_indexes_cache_counters(self, collect_module, tmp_path):
        (tmp_path / "e19_cache_timing.json").write_text(
            json.dumps(
                {"speedup": 50.0, "cache": {"hits": 96, "misses": 0}}
            )
        )
        (tmp_path / "e17_timing.json").write_text(
            json.dumps({"speedup": 3.0})
        )
        summary = collect_module.collect(tmp_path)
        assert summary["caches"] == {
            "e19_cache_timing": {"hits": 96, "misses": 0}
        }

    def test_main_prints_cache_lines(self, collect_module, tmp_path, capsys):
        (tmp_path / "e19_cache_timing.json").write_text(
            json.dumps({"cache": {"hits": 12, "misses": 4}})
        )
        assert collect_module.main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache 12 hit(s) / 4 miss(es)" in out
