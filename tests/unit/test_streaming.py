"""Streaming accumulators: exactness, merging, and checkpoint carry.

The load-bearing contract is *bit-identity*: the O(1)-memory streaming
integrals must equal a sequential reduction over the materialised
trajectory exactly (same float additions in the same order), and a
``state_dict``/``load_state``-carried accumulator re-attached with
``attach_stream(acc, reset=False)`` must continue an interrupted run
bit-identically to an uninterrupted one.
"""

import numpy as np
import pytest

from repro.analysis import potentials as pot
from repro.analysis.streaming import (
    PotentialTrajectory,
    RunningMoments,
    StreamingPotentials,
    StreamingShares,
    potential_values,
    share_values,
)
from repro.core.weights import WeightTable
from repro.engine.aggregate import AggregateSimulation
from repro.engine.batched import BatchedAggregateSimulation
from repro.engine.hetero import HeterogeneousAggregateBatch
from repro.engine.rng import make_rng

WEIGHTS = [1.0, 2.0, 3.0]
DARK = [30, 20, 10]


def scalar_engine(seed=11):
    return AggregateSimulation(
        WeightTable(WEIGHTS), dark_counts=DARK, rng=make_rng(seed)
    )


def batched_engine(seed=11, replications=4):
    return BatchedAggregateSimulation(
        WeightTable(WEIGHTS), DARK, replications=replications, rng=seed
    )


def hetero_engine(seed=11):
    return HeterogeneousAggregateBatch(
        [WeightTable([1.0, 2.0]), WeightTable(WEIGHTS)],
        [[20, 10], DARK],
        rng=seed,
    )


class TestPotentialValues:
    def test_matches_scalar_analysis_functions(self):
        weights = WeightTable(WEIGHTS)
        dark = np.array([[12.0, 7.0, 3.0]])
        light = np.array([[4.0, 9.0, 2.0]])
        phi, psi, sigma = potential_values(dark, light, weights)
        assert phi[0] == pytest.approx(pot.phi(dark[0], weights))
        assert psi[0] == pytest.approx(pot.psi(light[0], weights))
        assert sigma[0] == pytest.approx(
            pot.sigma_squared(dark[0].sum(), light[0].sum(), weights)
        )

    def test_balanced_configuration_has_zero_phi(self):
        weights = WeightTable(WEIGHTS)
        dark = np.array([[2.0, 4.0, 6.0]])  # proportional to weights
        phi, _, _ = potential_values(dark, np.zeros_like(dark), weights)
        assert phi[0] == pytest.approx(0.0)

    def test_zero_weight_padding_excluded(self):
        """Padded hetero rows: the zero-weight column contributes
        nothing and the effective k shrinks."""
        padded_w = np.array([[1.0, 2.0, 0.0], WEIGHTS])
        dark = np.array([[5.0, 3.0, 0.0], [5.0, 3.0, 1.0]])
        light = np.zeros_like(dark)
        phi, _, _ = potential_values(dark, light, padded_w)
        narrow = WeightTable([1.0, 2.0])
        assert phi[0] == pytest.approx(pot.phi(dark[0, :2], narrow))

    def test_weight_shape_mismatch_rejected(self):
        dark = np.zeros((2, 3))
        with pytest.raises(ValueError, match="rows"):
            potential_values(dark, dark, np.ones((3, 3)))
        with pytest.raises(ValueError, match="wide"):
            potential_values(dark, dark, np.ones((2, 2)))

    def test_callable_weights_resolved(self):
        dark = np.array([[1.0, 2.0, 3.0]])
        direct = potential_values(dark, dark, WEIGHTS)
        lazy = potential_values(dark, dark, lambda: np.asarray(WEIGHTS))
        for a, b in zip(direct, lazy):
            assert np.array_equal(a, b)

    def test_share_values_fair_point(self):
        weights = WeightTable(WEIGHTS)
        dark = np.array([[1.0, 2.0, 3.0]])
        shares, error = share_values(dark, np.zeros_like(dark), weights)
        assert shares.sum(axis=1)[0] == pytest.approx(1.0)
        assert error[0] == pytest.approx(0.0)


class TestStreamingEqualsTrajectory:
    @pytest.mark.parametrize(
        "build,weights_of",
        [
            (scalar_engine, lambda e: WeightTable(WEIGHTS)),
            (batched_engine, lambda e: WeightTable(WEIGHTS)),
            (hetero_engine, lambda e: e.weights_matrix),
        ],
        ids=["scalar", "batched", "hetero"],
    )
    def test_integrals_bit_identical(self, build, weights_of):
        engine = build()
        weights = weights_of(engine)
        streaming = StreamingPotentials(weights)
        trajectory = PotentialTrajectory(weights)
        engine.attach_stream(streaming)
        engine.attach_stream(trajectory)
        for chunk in (170, 230, 1):
            engine.run(chunk)
        replayed = trajectory.integrals()
        for name in ("phi", "psi", "sigma"):
            assert np.array_equal(
                getattr(streaming, f"_int_{name}"), replayed[name]
            ), name

    def test_durations_cover_horizon(self):
        engine = scalar_engine()
        streaming = StreamingPotentials(WeightTable(WEIGHTS))
        engine.attach_stream(streaming)
        engine.run(400)
        assert streaming.durations()[0] == 400.0

    def test_summary_consistency(self):
        engine = batched_engine()
        streaming = StreamingPotentials(WeightTable(WEIGHTS))
        engine.attach_stream(streaming)
        engine.run(300)
        out = streaming.summary()
        for name in ("phi", "psi", "sigma"):
            assert np.all(out[f"min_{name}"] <= out[f"mean_{name}"])
            assert np.all(out[f"mean_{name}"] <= out[f"max_{name}"])
            assert np.all(out[f"min_{name}"] <= out[f"final_{name}"])
            assert np.all(out[f"final_{name}"] <= out[f"max_{name}"])


class TestCheckpointCarry:
    def test_carried_accumulator_bit_identical(self):
        """state_dict/load_state + attach_stream(reset=False) continues
        the integral with the same float additions as an uninterrupted
        run."""
        # The baseline runs the same two chunks uninterrupted: every
        # run() horizon syncs the integral, so the checkpointed path
        # must be compared against a run with the same sync points.
        whole = batched_engine(seed=5)
        acc_whole = StreamingPotentials(WeightTable(WEIGHTS))
        whole.attach_stream(acc_whole)
        whole.run(230)
        whole.run(270)

        part = batched_engine(seed=5)
        acc_part = StreamingPotentials(WeightTable(WEIGHTS))
        part.attach_stream(acc_part)
        part.run(230)
        snap = part.snapshot()
        acc_state = acc_part.state_dict()

        resumed = batched_engine(seed=0)
        resumed.restore(snap)
        acc_resumed = StreamingPotentials(WeightTable(WEIGHTS))
        acc_resumed.load_state(acc_state)
        resumed.attach_stream(acc_resumed, reset=False)
        resumed.run(270)

        for field in acc_whole._concat_fields():
            assert np.array_equal(
                getattr(acc_whole, field), getattr(acc_resumed, field)
            ), field
        assert np.array_equal(acc_whole.events(), acc_resumed.events())

    def test_merge_serial_close_and_validated(self):
        whole = scalar_engine(seed=9)
        acc_whole = StreamingPotentials(WeightTable(WEIGHTS))
        whole.attach_stream(acc_whole)
        whole.run(250)
        whole.run(350)

        part = scalar_engine(seed=9)
        first = StreamingPotentials(WeightTable(WEIGHTS))
        part.attach_stream(first)
        part.run(250)
        part.detach_streams()
        second = StreamingPotentials(WeightTable(WEIGHTS))
        part.attach_stream(second)
        part.run(350)
        first.merge_serial(second)

        assert np.array_equal(first.events(), acc_whole.events())
        assert np.array_equal(first.durations(), acc_whole.durations())
        for name in ("phi", "psi", "sigma"):
            assert np.allclose(
                getattr(first, f"_int_{name}"),
                getattr(acc_whole, f"_int_{name}"),
                rtol=1e-12,
            )
            # max/min and final values are order-free: exact.
            assert np.array_equal(
                getattr(first, f"_max_{name}"),
                getattr(acc_whole, f"_max_{name}"),
            )
            assert np.array_equal(
                getattr(first, f"_cur_{name}"),
                getattr(acc_whole, f"_cur_{name}"),
            )

    def test_merge_serial_rejects_gaps(self):
        engine = scalar_engine()
        first = StreamingPotentials(WeightTable(WEIGHTS))
        engine.attach_stream(first)
        engine.run(100)
        engine.detach_streams()
        engine.run(50)  # unobserved gap
        second = StreamingPotentials(WeightTable(WEIGHTS))
        engine.attach_stream(second)
        engine.run(100)
        with pytest.raises(ValueError, match="does not start"):
            first.merge_serial(second)

    def test_merge_serial_rejects_type_mismatch(self):
        engine = scalar_engine()
        a = StreamingPotentials(WeightTable(WEIGHTS))
        b = StreamingShares(WeightTable(WEIGHTS))
        engine.attach_stream(a)
        engine.attach_stream(b)
        engine.run(10)
        with pytest.raises(TypeError):
            a.merge_serial(b)

    def test_concat_matches_separate_rows(self):
        """Row-concatenating two accumulators reproduces each slice —
        the fused mega-batch reassembly path."""
        left = batched_engine(seed=1, replications=2)
        right = batched_engine(seed=2, replications=3)
        acc_l = StreamingPotentials(WeightTable(WEIGHTS))
        acc_r = StreamingPotentials(WeightTable(WEIGHTS))
        left.attach_stream(acc_l)
        right.attach_stream(acc_r)
        left.run(200)
        right.run(200)
        joined = StreamingPotentials.concat([acc_l, acc_r])
        assert joined.rows == 5
        assert np.array_equal(
            joined._int_phi,
            np.concatenate([acc_l._int_phi, acc_r._int_phi]),
        )
        assert np.array_equal(
            joined.events(),
            np.concatenate([acc_l.events(), acc_r.events()]),
        )


class TestStreamingShares:
    def test_occupancy_rows_sum_to_one(self):
        engine = batched_engine(seed=3)
        acc = StreamingShares(WeightTable(WEIGHTS))
        engine.attach_stream(acc)
        engine.run(400)
        out = acc.summary()
        assert np.allclose(out["occupancy"].sum(axis=1), 1.0)
        assert np.all(out["max_error"] >= out["final_error"])
        assert np.all(out["duration"] == 400.0)

    def test_carried_shares_bit_identical(self):
        whole = batched_engine(seed=7)
        acc_whole = StreamingShares(WeightTable(WEIGHTS))
        whole.attach_stream(acc_whole)
        whole.run(140)
        whole.run(160)

        part = batched_engine(seed=7)
        acc_part = StreamingShares(WeightTable(WEIGHTS))
        part.attach_stream(acc_part)
        part.run(140)
        snap = part.snapshot()
        state = acc_part.state_dict()

        resumed = batched_engine(seed=0)
        resumed.restore(snap)
        acc_resumed = StreamingShares(WeightTable(WEIGHTS))
        acc_resumed.load_state(state)
        resumed.attach_stream(acc_resumed, reset=False)
        resumed.run(160)

        assert np.array_equal(
            acc_whole._int_shares, acc_resumed._int_shares
        )
        assert np.array_equal(acc_whole._max_error, acc_resumed._max_error)

    def test_state_dict_is_not_aliased(self):
        engine = batched_engine(seed=4)
        acc = StreamingShares(WeightTable(WEIGHTS))
        engine.attach_stream(acc)
        engine.run(100)
        state = acc.state_dict()
        frozen = {key: value.copy() for key, value in state.items()}
        engine.run(100)
        for key, value in frozen.items():
            assert np.array_equal(state[key], value), key


class TestRunningMoments:
    def test_matches_numpy(self):
        rng = make_rng(0)
        data = rng.normal(size=(200, 3))
        moments = RunningMoments(3)
        for row in data:
            moments.add(row)
        assert np.allclose(moments.mean(), data.mean(axis=0))
        assert np.allclose(moments.variance(), data.var(axis=0))
        assert np.array_equal(moments.minimum(), data.min(axis=0))
        assert np.array_equal(moments.maximum(), data.max(axis=0))
        assert np.all(moments.count() == 200)

    def test_partial_row_updates(self):
        moments = RunningMoments(4)
        moments.add(np.array([1.0, 2.0]), rows=np.array([0, 2]))
        moments.add(np.array([3.0]), rows=np.array([0]))
        assert moments.count().tolist() == [2, 0, 1, 0]
        assert moments.mean()[0] == pytest.approx(2.0)
        assert moments.variance()[1] == 0.0

    def test_merge_equals_single_pass(self):
        rng = make_rng(1)
        data = rng.normal(size=(300, 2))
        whole = RunningMoments(2)
        for row in data:
            whole.add(row)
        a, b = RunningMoments(2), RunningMoments(2)
        for row in data[:120]:
            a.add(row)
        for row in data[120:]:
            b.add(row)
        a.merge(b)
        assert np.array_equal(a.count(), whole.count())
        assert np.allclose(a.mean(), whole.mean(), rtol=1e-12)
        assert np.allclose(a.variance(), whole.variance(), rtol=1e-10)
        assert np.array_equal(a.minimum(), whole.minimum())
        assert np.array_equal(a.maximum(), whole.maximum())

    def test_merge_with_empty_segment(self):
        a = RunningMoments(2)
        a.add(np.array([1.0, 2.0]))
        a.merge(RunningMoments(2))
        assert a.count().tolist() == [1, 1]
        assert a.mean().tolist() == [1.0, 2.0]

    def test_state_round_trip(self):
        a = RunningMoments(2)
        a.add(np.array([1.0, 4.0]))
        a.add(np.array([3.0, 8.0]))
        twin = RunningMoments(2)
        twin.load_state(a.state_dict())
        twin.add(np.array([5.0, 0.0]))
        a.add(np.array([5.0, 0.0]))
        assert np.array_equal(a.mean(), twin.mean())
        assert np.array_equal(a.variance(), twin.variance())

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            RunningMoments(0)
        a = RunningMoments(2)
        with pytest.raises(ValueError):
            a.merge(RunningMoments(3))
