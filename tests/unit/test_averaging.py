"""Unit tests for the averaging / load-balancing baselines."""

import numpy as np
import pytest

from repro.baselines.averaging import AveragingProcess, MatchingDiffusion


class TestAveragingProcess:
    def test_mean_invariant_without_noise(self):
        process = AveragingProcess([0.0, 1.0, 2.0, 3.0], rng=0)
        before = process.mean()
        process.run(5000)
        assert process.mean() == pytest.approx(before)

    def test_discrepancy_shrinks(self):
        process = AveragingProcess([0.0] * 10 + [10.0] * 10, rng=1)
        initial = process.discrepancy()
        process.run(20_000)
        assert process.discrepancy() < initial / 100

    def test_needs_two_values(self):
        with pytest.raises(ValueError):
            AveragingProcess([1.0])

    def test_noise_must_be_non_negative(self):
        with pytest.raises(ValueError):
            AveragingProcess([0.0, 1.0], noise=-0.1)

    def test_noise_perturbs_mean(self):
        process = AveragingProcess([0.0, 1.0] * 50, noise=0.5, rng=2)
        before = process.mean()
        process.run(20_000)
        # Noisy averaging drifts; it should not stay numerically equal.
        assert process.mean() != pytest.approx(before, abs=1e-12)

    def test_time_counter(self):
        process = AveragingProcess([0.0, 1.0], rng=3)
        process.run(7)
        assert process.time == 7

    def test_values_stay_in_convex_hull_without_noise(self):
        process = AveragingProcess([-5.0, 3.0, 11.0], rng=4)
        process.run(5000)
        assert process.values.min() >= -5.0 - 1e-9
        assert process.values.max() <= 11.0 + 1e-9


class TestMatchingDiffusion:
    def test_mean_invariant(self):
        process = MatchingDiffusion([0.0, 4.0, 8.0, 12.0], rng=0)
        before = process.values.mean()
        process.run(50)
        assert process.values.mean() == pytest.approx(before)

    def test_discrepancy_decays_geometrically(self):
        process = MatchingDiffusion(
            np.arange(64, dtype=float), rng=1
        )
        initial = process.discrepancy()
        process.run(40)
        assert process.discrepancy() < initial / 50

    def test_odd_population_leaves_one_unmatched(self):
        process = MatchingDiffusion([0.0, 10.0, 20.0], rng=2)
        process.round()
        # Exactly one pair averaged: two values equal.
        values = sorted(process.values.tolist())
        assert len(values) == 3

    def test_round_counter(self):
        process = MatchingDiffusion([0.0, 1.0], rng=3)
        process.run(9)
        assert process.rounds == 9

    def test_needs_two_values(self):
        with pytest.raises(ValueError):
            MatchingDiffusion([1.0])
