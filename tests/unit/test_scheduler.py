"""Unit tests for schedulers."""

import numpy as np

from repro.engine.rng import make_rng
from repro.engine.scheduler import RoundRobinScheduler, UniformScheduler


class TestUniformScheduler:
    def test_block_shape_and_range(self):
        block = UniformScheduler().draw_block(10, 1000, make_rng(0))
        assert block.shape == (1000,)
        assert block.min() >= 0
        assert block.max() < 10

    def test_roughly_uniform(self):
        block = UniformScheduler().draw_block(4, 40_000, make_rng(1))
        counts = np.bincount(block, minlength=4)
        assert abs(counts - 10_000).max() < 600

    def test_deterministic_given_seed(self):
        a = UniformScheduler().draw_block(7, 100, make_rng(3))
        b = UniformScheduler().draw_block(7, 100, make_rng(3))
        np.testing.assert_array_equal(a, b)


class TestRoundRobinScheduler:
    def test_cycles_in_order(self):
        scheduler = RoundRobinScheduler()
        block = scheduler.draw_block(3, 7, make_rng(0))
        np.testing.assert_array_equal(block, [0, 1, 2, 0, 1, 2, 0])

    def test_continues_across_blocks(self):
        scheduler = RoundRobinScheduler()
        scheduler.draw_block(3, 2, make_rng(0))
        block = scheduler.draw_block(3, 3, make_rng(0))
        np.testing.assert_array_equal(block, [2, 0, 1])

    def test_custom_start(self):
        scheduler = RoundRobinScheduler(start=2)
        block = scheduler.draw_block(4, 3, make_rng(0))
        np.testing.assert_array_equal(block, [2, 3, 0])

    def test_every_agent_scheduled_once_per_cycle(self):
        scheduler = RoundRobinScheduler()
        block = scheduler.draw_block(5, 5, make_rng(0))
        assert sorted(block.tolist()) == [0, 1, 2, 3, 4]
