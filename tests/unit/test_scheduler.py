"""Unit tests for schedulers."""

import numpy as np

from repro.engine.rng import make_rng
from repro.engine.scheduler import RoundRobinScheduler, UniformScheduler


class TestUniformScheduler:
    def test_block_shape_and_range(self):
        block = UniformScheduler().draw_block(10, 1000, make_rng(0))
        assert block.shape == (1000,)
        assert block.min() >= 0
        assert block.max() < 10

    def test_roughly_uniform(self):
        block = UniformScheduler().draw_block(4, 40_000, make_rng(1))
        counts = np.bincount(block, minlength=4)
        assert abs(counts - 10_000).max() < 600

    def test_deterministic_given_seed(self):
        a = UniformScheduler().draw_block(7, 100, make_rng(3))
        b = UniformScheduler().draw_block(7, 100, make_rng(3))
        np.testing.assert_array_equal(a, b)


class TestRoundRobinScheduler:
    def test_cycles_in_order(self):
        scheduler = RoundRobinScheduler()
        block = scheduler.draw_block(3, 7, make_rng(0))
        np.testing.assert_array_equal(block, [0, 1, 2, 0, 1, 2, 0])

    def test_continues_across_blocks(self):
        scheduler = RoundRobinScheduler()
        scheduler.draw_block(3, 2, make_rng(0))
        block = scheduler.draw_block(3, 3, make_rng(0))
        np.testing.assert_array_equal(block, [2, 0, 1])

    def test_custom_start(self):
        scheduler = RoundRobinScheduler(start=2)
        block = scheduler.draw_block(4, 3, make_rng(0))
        np.testing.assert_array_equal(block, [2, 3, 0])

    def test_every_agent_scheduled_once_per_cycle(self):
        scheduler = RoundRobinScheduler()
        block = scheduler.draw_block(5, 5, make_rng(0))
        assert sorted(block.tolist()) == [0, 1, 2, 3, 4]

    def test_reset_restores_start(self):
        scheduler = RoundRobinScheduler(start=2)
        first = scheduler.draw_block(5, 4, make_rng(0))
        scheduler.reset()
        second = scheduler.draw_block(5, 4, make_rng(0))
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, [2, 3, 4, 0])

    def test_uniform_reset_is_noop(self):
        scheduler = UniformScheduler()
        scheduler.reset()  # must not raise
        block = scheduler.draw_block(5, 3, make_rng(0))
        assert block.shape == (3,)


class TestSchedulerSharedAcrossSimulations:
    """Regression: a scheduler instance shared by several simulations
    must start each one from its initial state instead of continuing
    mid-cycle (replication r > 0 used to silently start wherever the
    previous run left the cursor)."""

    def _run(self, scheduler, seed):
        from repro.core.diversification import Diversification
        from repro.core.weights import WeightTable
        from repro.engine.population import Population
        from repro.engine.simulator import Simulation

        weights = WeightTable.uniform(2)
        protocol = Diversification(weights)
        population = Population.from_colours(
            [i % 2 for i in range(10)], protocol, k=2
        )
        simulation = Simulation(
            protocol, population, scheduler=scheduler, rng=seed
        )
        simulation.run(500)
        return population.colour_counts(), population.dark_counts()

    def test_replications_reproducible_with_shared_instance(self):
        shared = RoundRobinScheduler()
        shared_runs = [self._run(shared, seed=7) for _ in range(3)]
        fresh_runs = [
            self._run(RoundRobinScheduler(), seed=7) for _ in range(3)
        ]
        for (sc, sd), (fc, fd) in zip(shared_runs, fresh_runs):
            np.testing.assert_array_equal(sc, fc)
            np.testing.assert_array_equal(sd, fd)
