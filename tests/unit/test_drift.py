"""Unit tests for the exact potential drifts (Lemmas 2.9 / 2.10)."""

import numpy as np
import pytest

from repro.analysis.drift import (
    exact_phi_drift,
    exact_psi_drift,
    verify_phi_contraction,
    verify_psi_contraction,
)
from repro.analysis.potentials import phi, psi
from repro.core.weights import WeightTable
from repro.engine.aggregate import AggregateSimulation
from repro.experiments.workloads import equilibrium_split


class TestExactPhiDrift:
    def test_matches_monte_carlo(self, skewed_weights):
        """The exact drift must match a brute-force Monte Carlo
        estimate of E[φ(t+1)] − φ(t) from a fixed configuration."""
        dark = np.array([40, 30, 20])
        light = np.array([5, 8, 12])
        exact = exact_phi_drift(dark, light, skewed_weights)
        samples = 40_000
        total = 0.0
        base = phi(dark, skewed_weights)
        rng = np.random.default_rng(0)
        for _ in range(samples):
            engine = AggregateSimulation(
                skewed_weights.copy(), dark_counts=dark.tolist(),
                light_counts=light.tolist(),
                rng=rng.integers(0, 2**31),
            )
            engine.step()
            total += phi(engine.dark_counts(), skewed_weights) - base
        estimate = total / samples
        spread = abs(exact) + 0.5
        assert abs(estimate - exact) < 4 * spread / np.sqrt(samples) * 50

    def test_negative_drift_when_unbalanced(self, skewed_weights):
        """Far from balance (large φ) the drift must be negative."""
        dark = np.array([80, 10, 10])
        light = np.array([10, 10, 10])
        assert exact_phi_drift(dark, light, skewed_weights) < 0

    def test_near_zero_at_balance(self, skewed_weights):
        dark, light = equilibrium_split(700, skewed_weights)
        drift = exact_phi_drift(dark, light, skewed_weights)
        # At equilibrium the drift is the small positive noise floor.
        assert abs(drift) < 5.0

    def test_requires_two_agents(self, skewed_weights):
        with pytest.raises(ValueError):
            exact_phi_drift([1, 0, 0], [0, 0, 0], skewed_weights)


class TestExactPsiDrift:
    def test_matches_monte_carlo(self, skewed_weights):
        dark = np.array([40, 30, 20])
        light = np.array([20, 5, 3])
        exact = exact_psi_drift(dark, light, skewed_weights)
        base = psi(light, skewed_weights)
        samples = 40_000
        total = 0.0
        rng = np.random.default_rng(1)
        for _ in range(samples):
            engine = AggregateSimulation(
                skewed_weights.copy(), dark_counts=dark.tolist(),
                light_counts=light.tolist(),
                rng=rng.integers(0, 2**31),
            )
            engine.step()
            total += psi(engine.light_counts(), skewed_weights) - base
        estimate = total / samples
        assert abs(estimate - exact) < 0.5

    def test_negative_drift_when_lights_unbalanced(self, skewed_weights):
        """Unbalanced lights over a balanced dark base: ψ must fall."""
        dark = np.array([100, 200, 300])
        light = np.array([60, 2, 2])
        assert exact_psi_drift(dark, light, skewed_weights) < 0


class TestContractionChecks:
    def test_lemma_2_9_along_trajectory(self, skewed_weights):
        """Lemma 2.9(1) with explicit constants holds along a real
        trajectory inside the stabilised regime."""
        engine = AggregateSimulation(
            skewed_weights.copy(), dark_counts=[200, 200, 200], rng=2
        )
        engine.run(200_000)  # settle into E
        for _ in range(50):
            engine.run(600)
            assert verify_phi_contraction(
                engine.dark_counts(), engine.light_counts(),
                skewed_weights, c1=0.5, c2=10.0,
            )

    def test_lemma_2_10_along_trajectory(self, skewed_weights):
        engine = AggregateSimulation(
            skewed_weights.copy(), dark_counts=[200, 200, 200], rng=3
        )
        engine.run(200_000)
        for _ in range(50):
            engine.run(600)
            assert verify_psi_contraction(
                engine.dark_counts(), engine.light_counts(),
                skewed_weights, c1=0.5, c2=10.0,
            )

    def test_contraction_from_worst_start(self, skewed_weights):
        """φ's drift is strongly contracting at the worst start."""
        dark = np.array([598, 1, 1])
        light = np.array([0, 0, 0])
        value = phi(dark, skewed_weights)
        drift = exact_phi_drift(dark, light, skewed_weights)
        n, w = 600.0, skewed_weights.total
        # Lemma 2.9 scale: |drift| should be ≳ φ/(n w) up to constants.
        assert drift < 0
        assert abs(drift) > 0.05 * value / (n * w)