"""Planted RL5 violations: set iteration and unsorted JSON inside the
hash closure (``spec_fingerprint`` -> ``_payload``).  ``unrelated`` is
outside the closure, so its unsorted dump must stay silent."""

import hashlib
import json


def _payload(params):
    return {key: params[key] for key in set(params)}  # planted: RL501


def spec_fingerprint(spec):
    doc = json.dumps(_payload(spec), indent=2)  # planted: RL502
    return hashlib.sha256(doc.encode()).hexdigest()


def unrelated(params):
    return json.dumps(params)
