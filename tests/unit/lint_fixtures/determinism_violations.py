"""Planted RL2 violations: stdlib random, global numpy RNG state,
wall-clock reads (aliased import), and unseeded generator
construction.  The seeded construction and perf_counter are the
sanctioned forms and must stay silent."""

import random  # planted: RL202
import time as _clock

import numpy as np
from numpy.random import default_rng


def sample():
    np.random.seed(7)  # planted: RL201
    return np.random.rand(3)  # planted: RL201


def stamp():
    return _clock.time()  # planted: RL203


def duration():
    return _clock.perf_counter()


def fresh_rng():
    return default_rng()  # planted: RL204


def seeded_rng(seed):
    return default_rng(seed)
