"""Planted RL3 violations: a snapshot/restore engine with a stepped
counter missing from both payloads, and a cache missing from
snapshot only.  ``_events`` is complete — snapshot reaches it through
``_event_payload()`` (the transitive self-call closure) — and
``_config`` is never mutated, so neither may be flagged."""


class PlantedEngine:
    def __init__(self, rows):
        self._config = {"rows": rows}
        self._clock = 0  # planted: RL301,RL302
        self._events = []
        self._cache = None  # planted: RL301

    def step(self):
        self._clock += 1
        self._events.append(self._clock)
        self._cache = None

    def totals(self):
        if self._cache is None:
            self._cache = len(self._events)
        return self._cache

    def _event_payload(self):
        return list(self._events)

    def snapshot(self):
        return {"events": self._event_payload()}

    def restore(self, state):
        self._events = list(state["events"])
        self._cache = None
