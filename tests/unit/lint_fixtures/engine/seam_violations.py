"""Planted RL1 violations — the exact forms the old regex guard
missed: aliased import, parenthesised multi-line from-import, dynamic
``__import__``, and dtype access through the alias."""

import numpy as _np  # planted: RL101
from numpy import (  # planted: RL101
    asarray,
    zeros,
)

handle = __import__("numpy")  # planted: RL102


def make_buffer(rows):
    return zeros(rows, dtype=_np.int64)  # planted: RL103


def widen(values):
    return asarray(values)
