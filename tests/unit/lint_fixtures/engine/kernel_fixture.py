"""Planted RL4 violations: a kernel using a NumPy-only op and ``out=``
mutation, and an un-gated class using a non-standard op.  The gated
class and the xp-parameter function use the same ops legitimately and
must stay silent."""

from .backend import require_engine_loops


class PlantedKernel:
    def step(self, state, xp):
        hist = xp.bincount(state)  # planted: RL401
        xp.add(state, 1, out=state)  # planted: RL402
        return hist


class UngatedHelper:
    def widen(self, arrays, xp):
        return xp.concatenate(arrays)  # planted: RL403


class GatedHelper:
    def __init__(self, backend=None):
        self._backend = require_engine_loops(backend)

    def widen(self, arrays):
        xp = self._backend.xp
        return xp.concatenate(arrays)


def histogram(state, xp):
    return xp.bincount(state)
