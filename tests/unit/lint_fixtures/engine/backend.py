"""Sanctioned seam module: the one place numpy may be imported."""

import numpy as np

INT64 = np.int64
FLOAT64 = np.float64
