"""A violation carrying an inline waiver — must produce no findings."""

import numpy as np  # repro-lint: disable=RL101 -- fixture: exercises the waiver path

BUFFER = np.asarray([0])
