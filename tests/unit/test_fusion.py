"""Unit tests for the mega-batch fusion layer: grouping, scatter
order, fallback behaviour, group seeding, error surfacing — and the
slimmed ProcessExecutor task payload."""

import pickle

import numpy as np
import pytest

from repro.experiments.fusion import (
    FusedMeasurement,
    FusedPlan,
    execute_fused,
    fuse,
    fused_implementation,
    fused_rng,
    measure_sweep_final_counts,
    register_fused,
    spec_fused_sweep,
)
from repro.experiments.pipeline import (
    ScenarioSpec,
    ShardError,
    _init_worker,
    _run_worker_shard,
    execute,
    plan,
)


def _echo_measure(params, rng):
    return {"cell": params["a"], "draw": float(rng.random())}


def _echo_fused(spec, shards):
    return [
        {"cell": shard.params["a"], "fused": True} for shard in shards
    ]


def _register_echo(group_key):
    register_fused(
        _echo_measure,
        FusedMeasurement(
            family="test", group_key=group_key, run_group=_echo_fused
        ),
    )


@pytest.fixture
def echo_spec():
    return ScenarioSpec(
        name="echo",
        measure=_echo_measure,
        grid={"a": (1, 2, 3)},
        replications=2,
        base_seed=5,
    )


class TestFuseGrouping:
    def test_unregistered_measure_falls_back_per_shard(self, echo_spec):
        register_fused(_echo_measure, None)  # clear any earlier impl
        fused = fuse(plan(echo_spec))
        assert isinstance(fused, FusedPlan)
        assert fused.fused_shards == 0
        assert fused.fallback_shards == 6
        assert all(len(job.shards) == 1 for job in fused.jobs)

    def test_single_group_key_makes_one_mega_job(self, echo_spec):
        _register_echo(lambda params: "all")
        fused = fuse(plan(echo_spec))
        assert fused.fused_shards == 6
        assert fused.fallback_shards == 0
        assert len(fused.jobs) == 1

    def test_incompatible_params_fall_back(self, echo_spec):
        _register_echo(
            lambda params: None if params["a"] == 2 else "rest"
        )
        fused = fuse(plan(echo_spec))
        assert fused.fused_shards == 4
        assert fused.fallback_shards == 2

    def test_distinct_keys_make_distinct_groups(self, echo_spec):
        _register_echo(lambda params: params["a"] % 2)
        fused = fuse(plan(echo_spec))
        mega = [job for job in fused.jobs if job.impl is not None]
        assert sorted(len(job.shards) for job in mega) == [2, 4]

    def test_registry_lookup(self, echo_spec):
        _register_echo(lambda params: "all")
        assert fused_implementation(_echo_measure).family == "test"
        assert fused_implementation(measure_sweep_final_counts) is not None


class TestFusedExecution:
    def test_values_scatter_back_to_shard_order(self, echo_spec):
        _register_echo(lambda params: params["a"] % 2)
        result = execute_fused(echo_spec)
        assert [v["cell"] for v in result.values()] == [
            1, 1, 2, 2, 3, 3
        ]
        assert all(v["fused"] for v in result.values())
        assert all(r.seconds >= 0 for r in result.results)

    def test_fallback_only_plan_matches_serial_bit_for_bit(self, echo_spec):
        """With no fused impl the fused path runs the same per-shard
        worker with the same per-shard seeds — results are identical,
        not just equivalent."""
        register_fused(_echo_measure, None)
        assert (
            execute(echo_spec, fused=True).values()
            == execute(echo_spec).values()
        )

    def test_fallback_shards_honour_jobs(self, echo_spec):
        """fused=True composes with jobs: fallback shards route
        through the process pool, bit-identical to the serial path."""
        register_fused(_echo_measure, None)
        pooled = execute(echo_spec, fused=True, jobs=2)
        assert pooled.jobs == 2
        assert pooled.values() == execute(echo_spec).values()

    def test_fused_impl_errors_surface_as_shard_errors(self, echo_spec):
        def boom(spec, shards):
            raise RuntimeError("fused boom")

        register_fused(
            _echo_measure,
            FusedMeasurement("test", lambda p: "all", boom),
        )
        with pytest.raises(ShardError, match="fused boom"):
            execute(echo_spec, fused=True)

    def test_group_error_lists_every_member_shard(self, echo_spec):
        """A mega-batch group fails as one engine call; its error must
        enumerate every member shard's params, not just the first — the
        first shard's cell is rarely the one that broke the batch."""
        def boom(spec, shards):
            raise RuntimeError("fused boom")

        register_fused(
            _echo_measure,
            FusedMeasurement("test", lambda p: "all", boom),
        )
        with pytest.raises(ShardError) as excinfo:
            execute(echo_spec, fused=True)
        message = str(excinfo.value)
        assert "group members:" in message
        for a in (1, 2, 3):
            assert f"'a': {a}" in message
        for shard in plan(echo_spec).shards:
            assert f"shard {shard.index} (cell {shard.cell}" in message

    def test_wrong_value_count_is_rejected(self, echo_spec):
        register_fused(
            _echo_measure,
            FusedMeasurement(
                "test", lambda p: "all", lambda spec, shards: [{}]
            ),
        )
        with pytest.raises(ShardError, match="returned 1 values") as excinfo:
            execute(echo_spec, fused=True)
        assert "group members:" in str(excinfo.value)


class TestFusedRng:
    def test_deterministic_in_the_shard_seeds(self, echo_spec):
        shards = plan(echo_spec).shards
        a = fused_rng(shards).random(4)
        b = fused_rng(plan(echo_spec).shards).random(4)
        np.testing.assert_array_equal(a, b)

    def test_depends_on_every_member(self, echo_spec):
        shards = plan(echo_spec).shards
        full = fused_rng(shards).random()
        assert fused_rng(shards[:-1]).random() != full

    def test_does_not_disturb_per_shard_streams(self, echo_spec):
        shards = plan(echo_spec).shards
        before = np.random.default_rng(shards[0].seed).random()
        fused_rng(shards)
        after = np.random.default_rng(shards[0].seed).random()
        assert before == after


class TestSweepSpec:
    def test_default_grid_is_24_cells(self):
        spec = spec_fused_sweep()
        expanded = plan(spec)
        assert len(expanded.cells) == 24
        assert len(expanded.shards) == 24 * 50

    def test_fused_and_serial_agree_on_structure(self):
        spec = spec_fused_sweep(
            weight_vectors=((1.0, 2.0),), ns=(40,), rounds=5,
            replications=3,
        )
        fused = execute(spec, fused=True)
        serial = execute(spec)
        assert len(fused.values()) == len(serial.values()) == 3
        for value in fused.values() + serial.values():
            assert sum(value["counts"]) == 40


class TestSlimExecutorTasks:
    """PR satellite: the process pool ships ``(params, seed)`` per
    shard; the measurement callable travels once via the pool
    initializer instead of once per task."""

    def test_per_shard_payload_shrank(self):
        expanded = plan(spec_fused_sweep(replications=2))
        shard = expanded.shards[0]
        slim = pickle.dumps((shard.params, shard.seed))
        legacy = pickle.dumps(
            (expanded.spec.measure, shard.params, shard.seed)
        )
        assert len(slim) < len(legacy)

    def test_slim_task_has_no_measure(self):
        expanded = plan(spec_fused_sweep(replications=2))
        task = (expanded.shards[0].params, expanded.shards[0].seed)
        assert b"measure_sweep_final_counts" not in pickle.dumps(task)

    def test_worker_initializer_round_trip(self):
        """The initializer + slim-task pair computes the same outcome
        as the serial worker."""
        spec = ScenarioSpec(
            name="t", measure=_echo_measure, grid={"a": (7,)},
            base_seed=3,
        )
        shard = plan(spec).shards[0]
        _init_worker(_echo_measure)
        value, error, _ = _run_worker_shard((shard.params, shard.seed))
        assert error is None
        assert value["cell"] == 7
        assert value["draw"] == float(
            np.random.default_rng(shard.seed).random()
        )
