"""RNG state round-trips through ``repro-ckpt/v1`` payloads.

Checkpoint bit-identity reduces to one fact: a generator restored from
:func:`repro.engine.checkpoint.rng_state` continues the *exact* draw
sequence of the uninterrupted generator — including downstream helpers
(:func:`spawn_sequences`, :func:`seed_stream`) and the per-shard seeds
of all three pipeline seed scopes (stream / cell / direct).
"""

import numpy as np
import pytest

from repro.engine import checkpoint as ckpt
from repro.engine.rng import make_rng, seed_stream, spawn, spawn_sequences
from repro.engine.streams import RowStreams
from repro.experiments.pipeline import ScenarioSpec, plan


def measure_stub(params, rng):  # pragma: no cover - never executed
    return {}


class TestGeneratorRoundTrip:
    def test_state_round_trip_continues_draws(self):
        whole = make_rng(123)
        part = make_rng(123)
        part.random(97)  # advance mid-buffer
        whole.random(97)
        state = ckpt.rng_state(part)
        restored = ckpt.restore_rng(state)
        assert np.array_equal(whole.random(1000), restored.random(1000))

    def test_state_is_json_roundtrippable(self):
        import json

        rng = make_rng(7)
        rng.integers(0, 100, size=33)
        state = json.loads(json.dumps(ckpt.rng_state(rng)))
        restored = ckpt.restore_rng(state)
        twin = make_rng(7)
        twin.integers(0, 100, size=33)
        assert twin.random() == restored.random()

    def test_set_rng_state_in_place(self):
        source = make_rng(5)
        source.random(10)
        target = make_rng(999)
        ckpt.set_rng_state(target, ckpt.rng_state(source))
        assert source.random() == target.random()

    def test_cached_gauss_draw_survives(self):
        """standard_normal leaves a buffered uint32 in the generator;
        the snapshot must carry it."""
        whole = make_rng(11)
        part = make_rng(11)
        whole.standard_normal(7)
        part.standard_normal(7)
        restored = ckpt.restore_rng(ckpt.rng_state(part))
        assert np.array_equal(
            whole.standard_normal(50), restored.standard_normal(50)
        )

    def test_wrong_bit_generator_rejected(self):
        rng = make_rng(0)
        state = ckpt.rng_state(rng)
        state["bit_generator"] = "Philox"
        with pytest.raises(ValueError):
            ckpt.set_rng_state(make_rng(0), state)


class TestSpawnAfterRestore:
    def test_spawn_is_not_part_of_the_snapshot(self):
        """SeedSequence spawn counters are *not* bit-generator state:
        a restored generator's spawn() children differ from the
        original's.  This is why no engine spawns after construction —
        child streams draw their seed words off the generator itself
        (see RowStreams), which IS preserved (next test)."""
        whole = make_rng(42)
        restored = ckpt.restore_rng(ckpt.rng_state(make_rng(42)))
        (child_a,) = spawn(whole, 1)
        (child_b,) = spawn(restored, 1)
        assert child_a.random() != child_b.random()

    def test_drawn_child_seeds_survive_restore(self):
        """Child seeds drawn off the generator (the RowStreams scheme)
        continue identically after a snapshot/restore."""
        whole = make_rng(42)
        part = ckpt.restore_rng(ckpt.rng_state(make_rng(42)))
        words_a = whole.integers(0, 2**63, size=4, dtype=np.uint64)
        words_b = part.integers(0, 2**63, size=4, dtype=np.uint64)
        assert np.array_equal(words_a, words_b)
        for a, b in zip(words_a, words_b):
            assert make_rng(int(a)).random() == make_rng(int(b)).random()

    def test_spawn_sequences_is_stateless(self):
        """spawn_sequences is pure in (seed, count): checkpointing
        cannot perturb it, and prefixes are stable."""
        full = spawn_sequences(31337, 8)
        again = spawn_sequences(31337, 8)
        prefix = spawn_sequences(31337, 3)
        for a, b in zip(full, again):
            assert a.generate_state(4).tolist() == b.generate_state(4).tolist()
        for a, b in zip(full[:3], prefix):
            assert a.generate_state(4).tolist() == b.generate_state(4).tolist()

    def test_seed_stream_is_stateless(self):
        stream_a = seed_stream(99)
        stream_b = seed_stream(99)
        assert [next(stream_a) for _ in range(10)] == [
            next(stream_b) for _ in range(10)
        ]


def _shard_words(spec):
    return [
        shard.seed.generate_state(2).tolist() for shard in plan(spec).shards
    ]


class TestSeedScopesIndexDeterministic:
    """Per-shard seeds depend only on (spec, index) for every scope —
    the foundation of bit-identical pipeline resume: skipping completed
    shards cannot change the remaining shards' seeds."""

    def test_stream_scope(self):
        spec = ScenarioSpec(
            name="t",
            measure=measure_stub,
            grid={"n": [8, 16]},
            replications=3,
            base_seed=5,
            seed_scope="stream",
        )
        assert _shard_words(spec) == _shard_words(spec)

    def test_cell_scope(self):
        spec = ScenarioSpec(
            name="t",
            measure=measure_stub,
            grid={"n": [8, 16]},
            replications=2,
            base_seed=5,
            seed_scope="cell",
            cell_seed=lambda params: params["n"] * 1000,
        )
        assert _shard_words(spec) == _shard_words(spec)

    def test_direct_scope(self):
        spec = ScenarioSpec(
            name="t",
            measure=measure_stub,
            grid={"n": [8, 16]},
            replications=1,
            base_seed=5,
            seed_scope="direct",
            cell_seed=lambda params: params["n"],
        )
        assert _shard_words(spec) == _shard_words(spec)

    def test_suffix_stable_under_prefix_removal(self):
        """The seeds of shards 2.. are the same whether or not shards
        0..1 are (re)planned — resume never reseeds remaining work."""
        spec = ScenarioSpec(
            name="t",
            measure=measure_stub,
            grid={"n": [8, 16, 32]},
            replications=2,
            base_seed=9,
            seed_scope="stream",
        )
        first = _shard_words(spec)
        second = _shard_words(spec)
        assert first[2:] == second[2:]


class TestRowStreamsRoundTrip:
    def test_snapshot_restore_continues_draws(self):
        rng = make_rng(77)
        streams = RowStreams.from_generator(rng, 5)
        rows = np.arange(5)
        streams.take(rows, 3)
        snap = streams.snapshot()
        expected = streams.take(rows, 4)
        restored = RowStreams.from_snapshot(snap)
        assert np.array_equal(restored.take(rows, 4), expected)

    def test_restore_in_place(self):
        rng = make_rng(77)
        streams = RowStreams.from_generator(rng, 3)
        rows = np.arange(3)
        streams.take(rows, 5)
        snap = streams.snapshot()
        expected = streams.take(rows, 2)
        other = RowStreams.from_generator(make_rng(0), 3)
        other.restore(snap)
        assert np.array_equal(other.take(rows, 2), expected)

    def test_snapshot_not_aliased(self):
        """Drawing after a snapshot must not mutate the payload."""
        streams = RowStreams.from_generator(make_rng(3), 2)
        rows = np.arange(2)
        snap = streams.snapshot()
        pool = snap["pool"].copy()
        pos = snap["pos"].copy()
        streams.take(rows, 7)
        assert np.array_equal(snap["pool"], pool)
        assert np.array_equal(snap["pos"], pos)
