"""Unit tests for the Moran process baseline."""

import numpy as np
import pytest

from repro.baselines.moran import MoranProcess


class TestConstruction:
    def test_counts_and_size(self):
        process = MoranProcess([3, 4, 5], rng=0)
        assert process.n == 12
        assert process.k == 3

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            MoranProcess([3, -1], rng=0)

    def test_needs_two_agents(self):
        with pytest.raises(ValueError):
            MoranProcess([1], rng=0)

    def test_fitness_length_validated(self):
        with pytest.raises(ValueError):
            MoranProcess([2, 2], fitness=[1.0], rng=0)

    def test_fitness_positive(self):
        with pytest.raises(ValueError):
            MoranProcess([2, 2], fitness=[1.0, 0.0], rng=0)


class TestDynamics:
    def test_population_conserved(self):
        process = MoranProcess([10, 10], rng=1)
        process.run(2000, stop_on_fixation=False)
        assert process.colour_counts().sum() == 20

    def test_fixation_detection(self):
        process = MoranProcess([20, 0], rng=0)
        assert process.has_fixated()

    def test_neutral_drift_fixates(self):
        process = MoranProcess([10, 10], rng=2)
        steps = process.absorption_time(max_steps=200_000)
        assert steps is not None
        assert process.has_fixated()

    def test_absorption_time_respects_cap(self):
        process = MoranProcess([500, 500], rng=3)
        result = process.absorption_time(max_steps=10)
        # With n=1000 fixation within 10 steps is impossible.
        assert result is None

    def test_run_stops_on_fixation(self):
        process = MoranProcess([19, 1], rng=4)
        executed = process.run(500_000)
        assert process.has_fixated()
        assert executed < 500_000

    def test_fit_colour_usually_wins(self):
        """Strong selection: the fitter colour should fixate in a clear
        majority of runs (Lieberman et al. style)."""
        wins = 0
        for seed in range(30):
            process = MoranProcess(
                [10, 10], fitness=[1.0, 3.0], rng=seed
            )
            process.absorption_time(max_steps=500_000)
            if process.colour_counts()[1] == process.n:
                wins += 1
        assert wins >= 22  # expected >~ 0.9 * 30

    def test_time_counter(self):
        process = MoranProcess([5, 5], rng=5)
        process.step()
        process.step()
        assert process.time == 2
