"""RL3 acceptance: the checkpoint-completeness rule on real engines.

The headline case required by the rule's contract: take a *real*
engine module (``engine/batched.py``), rename its waived transient
field to a synthetic ``_forgotten`` and strip the waiver comments —
i.e. simulate a developer adding a mutable field to ``__init__`` and
forgetting to thread it through ``snapshot()``/``restore()`` — and
assert RL3 flags exactly that field at its ``__init__`` line.
"""

from __future__ import annotations

import pathlib
import re
import textwrap

import repro
from repro.lint import run_lint

ENGINE_DIR = pathlib.Path(repro.__file__).parent / "engine"

_WAIVER_COMMENT = re.compile(r"\s*#\s*repro-lint:[^\n]*")


def _strip_waivers(source: str) -> str:
    return _WAIVER_COMMENT.sub("", source)


def test_real_engines_pass_rl3_with_their_waivers():
    assert run_lint([ENGINE_DIR], select=["RL3"]) == []


def test_real_engines_carry_justified_waivers():
    # The RL3 waivers in the engines must keep their justifications:
    # a bare disable with no rationale is how waivers rot.
    waivers = [
        line
        for path in sorted(ENGINE_DIR.glob("*.py"))
        for line in path.read_text().splitlines()
        if "repro-lint: disable" in line
    ]
    assert waivers, "engines lost their RL3 waivers"
    for line in waivers:
        assert "--" in line.partition("disable=")[2], line


def test_synthetic_forgotten_field_is_flagged(tmp_path):
    source = (ENGINE_DIR / "batched.py").read_text()
    mutated = _strip_waivers(source).replace("_taps", "_forgotten")
    target = tmp_path / "engine" / "batched.py"
    target.parent.mkdir()
    target.write_text(mutated)

    init_line = next(
        lineno
        for lineno, line in enumerate(mutated.splitlines(), 1)
        if "self._forgotten: list = []" in line
    )
    findings = run_lint([tmp_path], root=tmp_path, select=["RL3"])
    forgotten = [
        (f.code, f.line) for f in findings if "_forgotten" in f.message
    ]
    assert ("RL301", init_line) in forgotten
    assert ("RL302", init_line) in forgotten


def test_field_serialised_through_helper_is_not_flagged(tmp_path):
    # The transitive self-call closure: snapshot() touching the field
    # only via a helper method still counts as serialising it.
    source = textwrap.dedent(
        """\
        class Engine:
            def __init__(self):
                self._ticks = []

            def step(self):
                self._ticks.append(1)

            def _payload(self):
                return list(self._ticks)

            def snapshot(self):
                return {"ticks": self._payload()}

            def restore(self, state):
                self._ticks = list(state["ticks"])
        """
    )
    target = tmp_path / "engine.py"
    target.write_text(source)
    assert run_lint([target], root=tmp_path, select=["RL3"]) == []


def test_static_configuration_fields_are_not_flagged(tmp_path):
    # Assigned in __init__ and never mutated again: not checkpoint
    # state, no finding even though snapshot ignores it.
    source = textwrap.dedent(
        """\
        class Engine:
            def __init__(self, rows):
                self._rows = rows
                self._count = 0

            def step(self):
                self._count += 1

            def snapshot(self):
                return {"count": self._count}

            def restore(self, state):
                self._count = state["count"]
        """
    )
    target = tmp_path / "engine.py"
    target.write_text(source)
    assert run_lint([target], root=tmp_path, select=["RL3"]) == []
