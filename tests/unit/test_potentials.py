"""Unit tests for the potential functions (Eqs. (10)-(11), Lemma 2.14)."""

import numpy as np
import pytest

from repro.analysis.potentials import (
    pairwise_imbalance,
    phi,
    phi_plateau,
    psi,
    sigma_plateau,
    sigma_squared,
    theorem_1_3_statistic,
)
from repro.core.weights import WeightTable


class TestPhi:
    def test_zero_at_perfect_balance(self, skewed_weights):
        # A_i proportional to w_i -> all A_i/w_i equal -> phi = 0.
        assert phi(np.array([10, 20, 30]), skewed_weights) == pytest.approx(0)

    def test_positive_off_balance(self, skewed_weights):
        assert phi(np.array([30, 20, 10]), skewed_weights) > 0

    def test_matches_pairwise_form(self, skewed_weights, rng):
        for _ in range(20):
            counts = rng.integers(0, 100, size=3)
            assert phi(counts, skewed_weights) == pytest.approx(
                pairwise_imbalance(counts, skewed_weights)
            )

    def test_hand_computed_value(self):
        weights = WeightTable([1.0, 1.0])
        # q = (3, 7): sum over ordered pairs of (q_i - q_j)^2 = 2*16.
        assert phi(np.array([3, 7]), weights) == pytest.approx(32.0)

    def test_scale_quadratic(self, skewed_weights):
        counts = np.array([5, 10, 40])
        assert phi(10 * counts, skewed_weights) == pytest.approx(
            100 * phi(counts, skewed_weights)
        )


class TestPsi:
    def test_psi_equals_phi_functionally(self, skewed_weights, rng):
        counts = rng.integers(0, 50, size=3)
        assert psi(counts, skewed_weights) == pytest.approx(
            phi(counts, skewed_weights)
        )


class TestSigma:
    def test_zero_at_equilibrium_split(self, skewed_weights):
        # A/w = a  <=>  sigma = 0; w=6, A=600, a=100.
        assert sigma_squared(600, 100, skewed_weights) == pytest.approx(0)

    def test_hand_computed(self, skewed_weights):
        assert sigma_squared(60, 4, skewed_weights) == pytest.approx(36.0)


class TestPlateaus:
    def test_phi_plateau_formula(self, skewed_weights):
        n = 1000
        expected = 2.0 * 6.0 * n * np.log(n)
        assert phi_plateau(n, skewed_weights, 2.0) == pytest.approx(expected)

    def test_sigma_plateau_formula(self):
        n = 1000
        expected = 3.0 * n**1.5 * np.sqrt(np.log(n))
        assert sigma_plateau(n, 3.0) == pytest.approx(expected)

    def test_plateaus_need_n_two(self, skewed_weights):
        with pytest.raises(ValueError):
            phi_plateau(1, skewed_weights)
        with pytest.raises(ValueError):
            sigma_plateau(1)


class TestTheorem13Statistic:
    def test_alias_of_phi_on_colour_counts(self, skewed_weights):
        counts = np.array([17, 29, 41])
        assert theorem_1_3_statistic(counts, skewed_weights) == pytest.approx(
            phi(counts, skewed_weights)
        )
