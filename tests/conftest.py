"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import WeightTable


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden tables under tests/golden/ from the "
             "current code instead of diffing against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """True when the run should refresh tests/golden/ in place."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator; tests must not depend on call order
    across fixtures."""
    return np.random.default_rng(12345)


@pytest.fixture
def unit_weights() -> WeightTable:
    """Four unit-weight colours (the uniform-partition special case)."""
    return WeightTable.uniform(4)


@pytest.fixture
def skewed_weights() -> WeightTable:
    """Three colours with weights 1, 2, 3 (w = 6)."""
    return WeightTable([1.0, 2.0, 3.0])
