"""Property-based tests for the batched engine: per-replication
population conservation, non-negativity, seed reproducibility."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weights import WeightTable
from repro.engine.batched import BatchedAggregateSimulation


@st.composite
def batched_setup(draw):
    k = draw(st.integers(1, 4))
    weights = WeightTable(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
                min_size=k,
                max_size=k,
            )
        )
    )
    replications = draw(st.integers(1, 12))
    dark = draw(st.lists(st.integers(1, 20), min_size=k, max_size=k))
    light = draw(st.lists(st.integers(0, 8), min_size=k, max_size=k))
    if sum(dark) + sum(light) < 2:
        dark[0] += 2
    seed = draw(st.integers(0, 2**31 - 1))
    steps = draw(st.integers(0, 2000))
    return weights, replications, dark, light, seed, steps


class TestBatchedInvariants:
    @given(batched_setup())
    @settings(max_examples=40, deadline=None)
    def test_population_conserved_every_step(self, setup):
        """sum(A) + sum(a) == n in every replication after every
        per-step advance."""
        weights, replications, dark, light, seed, steps = setup
        engine = BatchedAggregateSimulation(
            weights, dark, light, replications=replications, rng=seed
        )
        n = engine.n
        for _ in range(min(steps, 300)):
            engine.step()
            totals = engine.dark_counts() + engine.light_counts()
            assert (totals.sum(axis=1) == n).all()

    @given(batched_setup())
    @settings(max_examples=40, deadline=None)
    def test_counts_non_negative_every_step(self, setup):
        weights, replications, dark, light, seed, steps = setup
        engine = BatchedAggregateSimulation(
            weights, dark, light, replications=replications, rng=seed
        )
        for _ in range(min(steps, 300)):
            engine.step()
            assert (engine.dark_counts() >= 0).all()
            assert (engine.light_counts() >= 0).all()

    @given(batched_setup())
    @settings(max_examples=40, deadline=None)
    def test_event_driven_conserves_and_reaches_horizon(self, setup):
        weights, replications, dark, light, seed, steps = setup
        engine = BatchedAggregateSimulation(
            weights, dark, light, replications=replications, rng=seed
        )
        n = engine.n
        engine.run(steps)
        assert (engine.times() == steps).all()
        assert engine.time == steps
        assert (engine.dark_counts() >= 0).all()
        assert (engine.light_counts() >= 0).all()
        totals = engine.dark_counts() + engine.light_counts()
        assert (totals.sum(axis=1) == n).all()

    @given(batched_setup())
    @settings(max_examples=25, deadline=None)
    def test_exact_reproducibility_from_seed(self, setup):
        """Two engines built from the same seed produce bit-identical
        trajectories in both modes."""
        weights, replications, dark, light, seed, steps = setup
        steps = min(steps, 500)

        def trajectory(per_step: bool) -> np.ndarray:
            engine = BatchedAggregateSimulation(
                weights.copy(), dark, light,
                replications=replications, rng=seed,
            )
            if per_step:
                engine.run_per_step(min(steps, 100))
            else:
                engine.run(steps)
            return np.concatenate(
                [engine.dark_counts(), engine.light_counts()], axis=1
            )

        for per_step in (False, True):
            np.testing.assert_array_equal(
                trajectory(per_step), trajectory(per_step)
            )

    @given(batched_setup())
    @settings(max_examples=40, deadline=None)
    def test_sustainability_invariant(self, setup):
        """Dark counts that start >= 1 never reach 0 in any
        replication (lightening requires A_i >= 2)."""
        weights, replications, dark, light, seed, steps = setup
        engine = BatchedAggregateSimulation(
            weights, dark, light, replications=replications, rng=seed
        )
        engine.run(steps)
        assert (engine.dark_counts() >= 1).all()


class TestBatchedValidation:
    def test_replications_required_for_flat_counts(self):
        import pytest

        with pytest.raises(ValueError):
            BatchedAggregateSimulation(WeightTable([1.0, 2.0]), [3, 3])

    def test_matrix_counts_fix_replications(self):
        engine = BatchedAggregateSimulation(
            WeightTable([1.0, 2.0]), [[3, 3], [4, 2], [1, 5]]
        )
        assert engine.replications == 3
        assert engine.n == 6

    def test_mismatched_population_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            BatchedAggregateSimulation(
                WeightTable([1.0, 2.0]), [[3, 3], [4, 4]]
            )

    def test_negative_counts_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            BatchedAggregateSimulation(
                WeightTable([1.0, 2.0]), [-1, 7], replications=2
            )

    def test_bad_lighten_probabilities_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            BatchedAggregateSimulation(
                WeightTable([1.0, 2.0]), [3, 3], replications=2,
                lighten_probabilities=[0.5, 1.5],
            )


class TestPerStepChunkingInvariance:
    """Per-step mode draws its uniforms in buffered blocks; the
    consumed stream — and therefore the trajectory — must depend only
    on (seed, total steps), never on how the steps were chunked."""

    def _engine(self, seed: int) -> BatchedAggregateSimulation:
        return BatchedAggregateSimulation(
            WeightTable([1.0, 2.0, 3.0]), [30, 15, 15],
            replications=16, rng=seed,
        )

    @given(
        st.integers(0, 2**31 - 1),
        st.lists(st.integers(1, 200), min_size=1, max_size=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_chunking_matches_one_call(self, seed, chunks):
        total = sum(chunks)
        whole = self._engine(seed)
        whole.run_per_step(total)
        pieces = self._engine(seed)
        for chunk in chunks:
            pieces.run_per_step(chunk)
        np.testing.assert_array_equal(
            whole.dark_counts(), pieces.dark_counts()
        )
        np.testing.assert_array_equal(
            whole.light_counts(), pieces.light_counts()
        )

    def test_step_equals_run_per_step(self):
        stepped = self._engine(99)
        for _ in range(700):
            stepped.step()
        ran = self._engine(99)
        ran.run_per_step(700)
        np.testing.assert_array_equal(
            stepped.dark_counts(), ran.dark_counts()
        )
        np.testing.assert_array_equal(
            stepped.light_counts(), ran.light_counts()
        )

    def test_chunking_spans_buffer_refills(self):
        """Totals larger than one uniform block must still agree (the
        block holds 16384 // (3 R) steps; R=16 gives 341)."""
        whole = self._engine(7)
        whole.run_per_step(900)
        pieces = self._engine(7)
        pieces.run_per_step(341)
        pieces.run_per_step(341)
        pieces.run_per_step(218)
        np.testing.assert_array_equal(
            whole.dark_counts(), pieces.dark_counts()
        )
