"""Split-invariance property suites for engine checkpointing.

The contract (``repro-ckpt/v1``): for EVERY engine and ANY split point

    ``run(a); snapshot(); ...; restore(); run(b)``

is bit-identical to the uninterrupted ``run(a + b)`` — counts, clocks,
change totals, and every subsequent RNG draw.  The suites drive each
engine to a hypothesis-chosen split (including split 0, the full
horizon, mid-buffer splits for the block-buffered agent engines,
mid-record-interval and mid-schedule splits through the segmented
runner, and per-row splits for the fused heterogeneous engine) and
compare against an uninterrupted twin seeded identically.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.interventions import AddAgents, AddColour
from repro.adversary.schedule import InterventionSchedule, run_with_interventions
from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine import (
    AggregateSimulation,
    ArraySimulation,
    BatchedAggregateSimulation,
    HeterogeneousAggregateBatch,
    MultiShadeAggregate,
    Population,
    RoundRobinScheduler,
    Simulation,
)
from repro.experiments.recorder import CountRecorder

WEIGHTS = [1.0, 2.0, 3.0]
DARK = [30, 20, 10]


def agg_fingerprint(engine):
    """Counts + clock + a fresh RNG draw (drawn once, at the end)."""
    return (
        engine.dark_counts().tolist(),
        engine.light_counts().tolist(),
        int(engine.time),
        float(engine.rng.random()),
    )


class TestAggregateSplitInvariance:
    @given(
        seed=st.integers(0, 2**31 - 1),
        split=st.integers(0, 600),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_split_matches_uninterrupted(self, seed, split):
        total = 600
        weights = WeightTable(WEIGHTS)
        whole = AggregateSimulation(weights, dark_counts=DARK, rng=seed)
        whole.run(total)
        resumed = AggregateSimulation(weights, dark_counts=DARK, rng=seed)
        resumed.run(split)
        payload = resumed.snapshot()
        fresh = WeightTable(WEIGHTS)
        other = AggregateSimulation(fresh, dark_counts=DARK, rng=0)
        other.restore(payload)
        other.run(total - split)
        assert agg_fingerprint(other) == agg_fingerprint(whole)

    @given(seed=st.integers(0, 2**31 - 1), split=st.integers(0, 400))
    @settings(max_examples=10, deadline=None)
    def test_snapshot_is_read_only(self, seed, split):
        """Taking a snapshot must not perturb the trajectory."""
        total = 400
        weights = WeightTable(WEIGHTS)
        plain = AggregateSimulation(weights, dark_counts=DARK, rng=seed)
        plain.run(total)
        observed = AggregateSimulation(weights, dark_counts=DARK, rng=seed)
        observed.run(split)
        observed.snapshot()
        observed.run(total - split)
        assert agg_fingerprint(observed) == agg_fingerprint(plain)


class TestMultiShadeSplitInvariance:
    @given(seed=st.integers(0, 2**31 - 1), split=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_any_split_matches_uninterrupted(self, seed, split):
        total = 500
        weights = WeightTable(WEIGHTS)
        counts = [12, 10, 8]
        whole = MultiShadeAggregate(weights, colour_counts=counts, rng=seed)
        whole.run(total)
        resumed = MultiShadeAggregate(
            weights, colour_counts=counts, rng=seed
        )
        resumed.run(split)
        payload = resumed.snapshot()
        other = MultiShadeAggregate(
            WeightTable(WEIGHTS), colour_counts=counts, rng=0
        )
        other.restore(payload)
        other.run(total - split)
        for colour in range(weights.k):
            assert whole.shade_counts(colour) == other.shade_counts(colour)
        assert agg_fingerprint(other) == agg_fingerprint(whole)


class TestBatchedSplitInvariance:
    @given(
        seed=st.integers(0, 2**31 - 1),
        split=st.integers(0, 500),
        replications=st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_split_matches_uninterrupted(
        self, seed, split, replications
    ):
        total = 500
        weights = WeightTable(WEIGHTS)
        whole = BatchedAggregateSimulation(
            weights, DARK, replications=replications, rng=seed
        )
        whole.run(total)
        resumed = BatchedAggregateSimulation(
            weights, DARK, replications=replications, rng=seed
        )
        resumed.run(split)
        payload = resumed.snapshot()
        other = BatchedAggregateSimulation(
            WeightTable(WEIGHTS), DARK, replications=replications, rng=0
        )
        other.restore(payload)
        other.run(total - split)
        assert np.array_equal(whole.dark_counts(), other.dark_counts())
        assert np.array_equal(whole.light_counts(), other.light_counts())
        assert np.array_equal(whole._times, other._times)
        # Per-row stream draws continue identically after restore.
        rows = np.arange(replications)
        assert np.array_equal(
            whole._streams.take(rows, 2), other._streams.take(rows, 2)
        )
        assert whole.rng.random() == other.rng.random()


class TestHeteroSplitInvariance:
    @given(
        seed=st.integers(0, 2**31 - 1),
        split_a=st.integers(0, 300),
        split_b=st.integers(0, 400),
    )
    @settings(max_examples=25, deadline=None)
    def test_per_row_splits_match_uninterrupted(
        self, seed, split_a, split_b
    ):
        """Fused rows may checkpoint at *different* per-row clocks."""
        tables = [WeightTable([1.0, 2.0]), WeightTable(WEIGHTS)]
        darks = [[20, 10], [15, 10, 5]]
        horizons = np.asarray([300, 400])
        whole = HeterogeneousAggregateBatch(tables, darks, rng=seed)
        whole.run_to(horizons)
        resumed = HeterogeneousAggregateBatch(
            [WeightTable([1.0, 2.0]), WeightTable(WEIGHTS)], darks,
            rng=seed,
        )
        resumed.run_to(np.asarray([split_a, split_b]))
        payload = resumed.snapshot()
        other = HeterogeneousAggregateBatch(
            [WeightTable([1.0, 2.0]), WeightTable(WEIGHTS)], darks, rng=0
        )
        other.restore(payload)
        other.run_to(horizons)
        assert np.array_equal(whole.dark_counts(), other.dark_counts())
        assert np.array_equal(whole.light_counts(), other.light_counts())
        assert np.array_equal(whole._times, other._times)
        assert whole.rng.random() == other.rng.random()


def build_simulation(seed, scheduler=None):
    weights = WeightTable(WEIGHTS)
    protocol = Diversification(weights)
    colours = [i % weights.k for i in range(12)]
    population = Population.from_colours(colours, protocol, k=weights.k)
    kwargs = {} if scheduler is None else {"scheduler": scheduler}
    return Simulation(protocol, population, rng=seed, **kwargs)


def sim_fingerprint(simulation):
    return (
        list(simulation.population.colours_view()),
        list(simulation.population.shades_view()),
        int(simulation.time),
        int(simulation.changes),
        float(simulation.rng.random()),
    )


class TestSimulationSplitInvariance:
    @given(seed=st.integers(0, 2**31 - 1), split=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_any_split_matches_uninterrupted(self, seed, split):
        """Splits land mid-buffer: the engine pre-draws scheduling in
        blocks, so the snapshot must carry the unconsumed draws."""
        total = 500
        whole = build_simulation(seed)
        whole.run(total)
        resumed = build_simulation(seed)
        resumed.run(split)
        payload = resumed.snapshot()
        other = build_simulation(0)
        other.restore(payload)
        other.run(total - split)
        assert sim_fingerprint(other) == sim_fingerprint(whole)

    @given(seed=st.integers(0, 2**31 - 1), split=st.integers(0, 300))
    @settings(max_examples=10, deadline=None)
    def test_round_robin_scheduler_state_restored(self, seed, split):
        total = 300
        whole = build_simulation(seed, scheduler=RoundRobinScheduler())
        whole.run(total)
        resumed = build_simulation(seed, scheduler=RoundRobinScheduler())
        resumed.run(split)
        payload = resumed.snapshot()
        other = build_simulation(0, scheduler=RoundRobinScheduler())
        other.restore(payload)
        other.run(total - split)
        assert sim_fingerprint(other) == sim_fingerprint(whole)


class TestArraySplitInvariance:
    @given(seed=st.integers(0, 2**31 - 1), split=st.integers(0, 700))
    @settings(max_examples=15, deadline=None)
    def test_single_any_split_matches_uninterrupted(self, seed, split):
        total = 700
        weights = WeightTable(WEIGHTS)
        colours = np.asarray([i % weights.k for i in range(16)])

        def build(s):
            return ArraySimulation(
                Diversification(WeightTable(WEIGHTS)),
                colours,
                k=weights.k,
                rng=s,
            )

        whole = build(seed)
        whole.run(total)
        resumed = build(seed)
        resumed.run(split)
        payload = resumed.snapshot()
        other = build(0)
        other.restore(payload)
        other.run(total - split)
        assert np.array_equal(whole._colours, other._colours)
        assert np.array_equal(whole._shades, other._shades)
        assert int(whole.time) == int(other.time)
        assert int(whole.changes) == int(other.changes)
        assert whole.rng.random() == other.rng.random()

    @given(seed=st.integers(0, 2**31 - 1), split=st.integers(0, 400))
    @settings(max_examples=10, deadline=None)
    def test_batched_any_split_matches_uninterrupted(self, seed, split):
        total = 400
        weights = WeightTable(WEIGHTS)
        colours = np.asarray([i % weights.k for i in range(10)])

        def build(s):
            return ArraySimulation(
                Diversification(WeightTable(WEIGHTS)),
                colours,
                k=weights.k,
                replications=3,
                rng=s,
            )

        whole = build(seed)
        whole.run(total)
        resumed = build(seed)
        resumed.run(split)
        payload = resumed.snapshot()
        other = build(0)
        other.restore(payload)
        other.run(total - split)
        assert np.array_equal(whole._colours, other._colours)
        assert np.array_equal(whole._shades, other._shades)
        assert whole.rng.random() == other.rng.random()


class TestScheduledSplitInvariance:
    """Checkpointing through the segmented runner: splits land
    mid-schedule (between interventions) and mid-record-interval."""

    @given(
        seed=st.integers(0, 2**31 - 1),
        split=st.integers(0, 900),
    )
    @settings(max_examples=20, deadline=None)
    def test_mid_schedule_and_mid_interval_resume(self, seed, split):
        total = 900
        interval = 70  # does not divide the horizon or the split

        def schedule():
            return InterventionSchedule(
                [
                    (250, AddAgents(0, 5, dark=True)),
                    (600, AddColour(2.0, 3, dark=True)),
                ]
            )

        weights = WeightTable(WEIGHTS)
        whole = AggregateSimulation(weights, dark_counts=DARK, rng=seed)
        whole_rec = CountRecorder(interval)
        run_with_interventions(
            whole, total, schedule(), recorder=whole_rec
        )

        first = AggregateSimulation(
            WeightTable(WEIGHTS), dark_counts=DARK, rng=seed
        )
        first_rec = CountRecorder(interval)
        run_with_interventions(
            first, split, schedule(), recorder=first_rec,
            final_snapshot=False,
        )
        payload = first.snapshot()
        rec_state = first_rec.state_dict()

        second = AggregateSimulation(
            WeightTable(WEIGHTS), dark_counts=DARK, rng=0
        )
        second.restore(payload)
        second_rec = CountRecorder(interval)
        second_rec.load_state(rec_state)
        run_with_interventions(
            second,
            total - split,
            schedule(),
            recorder=second_rec,
            resume=True,
        )

        assert agg_fingerprint(second) == agg_fingerprint(whole)
        assert np.array_equal(whole_rec.times(), second_rec.times())
        assert np.array_equal(
            whole_rec.colour_counts(), second_rec.colour_counts()
        )
        assert np.array_equal(
            whole_rec.dark_counts(), second_rec.dark_counts()
        )
        assert np.array_equal(
            whole_rec.light_counts(), second_rec.light_counts()
        )
