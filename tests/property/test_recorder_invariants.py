"""Property tests for the recorder layer.

The recorder's contract with the segmented runner — monotone snapshot
times, an unconditional horizon snapshot, interval chunking that never
changes the recorded series — is what checkpoint/resume leans on, so
each invariant gets its own property here.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.interventions import AddAgents
from repro.adversary.schedule import InterventionSchedule, run_with_interventions
from repro.engine.aggregate import AggregateSimulation
from repro.engine.observers import (
    ConvergenceDetector,
    MinCountTracker,
    Observer,
    OccupancyTracker,
)
from repro.engine.rng import make_rng
from repro.core.weights import WeightTable
from repro.experiments.recorder import CountRecorder

WEIGHTS = [1.0, 2.0, 4.0]
DARK = [25, 15, 5]


def build_engine(seed):
    return AggregateSimulation(
        WeightTable(WEIGHTS), dark_counts=DARK, rng=make_rng(seed)
    )


def recorded_series(recorder):
    return (
        recorder.times().tolist(),
        recorder.colour_counts().tolist(),
        recorder.dark_counts().tolist(),
        recorder.light_counts().tolist(),
    )


class TestRecorderInvariants:
    @given(
        seed=st.integers(0, 2**32 - 1),
        interval=st.integers(1, 90),
        total=st.integers(0, 400),
    )
    @settings(max_examples=30, deadline=None)
    def test_times_strictly_increase_and_horizon_present(
        self, seed, interval, total
    ):
        engine = build_engine(seed)
        recorder = CountRecorder(interval)
        run_with_interventions(engine, total, recorder=recorder)
        times = recorder.times()
        assert times[0] == 0
        assert np.all(np.diff(times) > 0)
        # The final snapshot is always the horizon, interval or not.
        assert times[-1] == total == engine.time

    @given(
        seed=st.integers(0, 2**32 - 1),
        interval=st.integers(1, 60),
        chunks=st.lists(st.integers(1, 80), min_size=1, max_size=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_chunking_invariance(self, seed, interval, chunks):
        """Driving the runner in arbitrary chunks (each non-final chunk
        a checkpoint, final_snapshot=False) records the same series as
        one uninterrupted run."""
        total = sum(chunks)
        whole_engine = build_engine(seed)
        whole = CountRecorder(interval)
        run_with_interventions(whole_engine, total, recorder=whole)

        part_engine = build_engine(seed)
        part = CountRecorder(interval)
        for i, chunk in enumerate(chunks):
            run_with_interventions(
                part_engine,
                chunk,
                recorder=part,
                resume=i > 0,
                final_snapshot=i == len(chunks) - 1,
            )
        for a, b in zip(recorded_series(whole), recorded_series(part)):
            assert a == b

    @given(
        seed=st.integers(0, 2**32 - 1),
        interval=st.integers(1, 60),
        split=st.integers(0, 300),
    )
    @settings(max_examples=25, deadline=None)
    def test_state_dict_round_trip(self, seed, interval, split):
        """A recorder rebuilt from state_dict carries the series on
        exactly — including the ragged colour-count widths created by
        an AddColour-style width change."""
        total = 300
        whole_engine = build_engine(seed)
        whole = CountRecorder(interval)
        run_with_interventions(whole_engine, total, recorder=whole)

        part_engine = build_engine(seed)
        part = CountRecorder(interval)
        run_with_interventions(
            part_engine, split, recorder=part, final_snapshot=False
        )
        snap = part_engine.snapshot()
        state = part.state_dict()

        resumed_engine = AggregateSimulation(
            WeightTable(WEIGHTS), dark_counts=DARK, rng=make_rng(0)
        )
        resumed_engine.restore(snap)
        resumed = CountRecorder(interval)
        resumed.load_state(state)
        run_with_interventions(
            resumed_engine, total - split, recorder=resumed, resume=True
        )
        for a, b in zip(recorded_series(whole), recorded_series(resumed)):
            assert a == b

    @given(seed=st.integers(0, 2**32 - 1), interval=st.integers(1, 50))
    @settings(max_examples=20, deadline=None)
    def test_interventions_do_not_break_monotonicity(self, seed, interval):
        engine = build_engine(seed)
        recorder = CountRecorder(interval)
        schedule = InterventionSchedule(
            [(40, AddAgents(0, 5, dark=True)), (120, AddAgents(1, 3, dark=False))]
        )
        run_with_interventions(engine, 200, schedule, recorder=recorder)
        times = recorder.times()
        assert np.all(np.diff(times) > 0)
        assert times[-1] == 200
        # Row widths stay consistent across the whole record.
        assert recorder.colour_counts().shape[0] == len(times)

    def test_load_state_empty_round_trip(self):
        recorder = CountRecorder(10)
        fresh = CountRecorder(10)
        fresh.load_state(recorder.state_dict())
        assert len(fresh) == 0
        assert fresh.last_time() is None


def assert_state_equal(a, b):
    assert a.keys() == b.keys()
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            assert np.array_equal(va, vb), key
        else:
            assert va == vb, key


class TestObserverStateRoundTrip:
    def _run_sim(self, seed, steps, observers):
        from repro.core.diversification import Diversification
        from repro.engine.population import Population
        from repro.engine.simulator import Simulation

        protocol = Diversification(WeightTable([1.0, 2.0]))
        population = Population.from_colours(
            [i % 2 for i in range(20)], protocol, k=2
        )
        sim = Simulation(protocol, population, rng=make_rng(seed))
        for obs in observers:
            sim.add_observer(obs)
        sim.run(steps)
        return sim

    @given(seed=st.integers(0, 2**32 - 1), split=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_trackers_resume_like_uninterrupted(self, seed, split):
        total = 200
        whole_occ, whole_min = OccupancyTracker(), MinCountTracker()
        self._run_sim(seed, total, [whole_occ, whole_min])

        part_occ, part_min = OccupancyTracker(), MinCountTracker()
        sim = self._run_sim(seed, split, [part_occ, part_min])
        snap = sim.snapshot()
        occ_state = part_occ.state_dict()
        min_state = part_min.state_dict()

        from repro.core.diversification import Diversification
        from repro.engine.population import Population
        from repro.engine.simulator import Simulation

        protocol = Diversification(WeightTable([1.0, 2.0]))
        population = Population.from_colours(
            [i % 2 for i in range(20)], protocol, k=2
        )
        resumed = Simulation(protocol, population, rng=make_rng(0))
        resumed.restore(snap)
        res_occ, res_min = OccupancyTracker(), MinCountTracker()
        res_occ.load_state(occ_state)
        res_min.load_state(min_state)
        resumed.add_observer(res_occ)
        resumed.add_observer(res_min)
        resumed.run(total - split)

        assert_state_equal(res_min.state_dict(), whole_min.state_dict())
        assert_state_equal(res_occ.state_dict(), whole_occ.state_dict())

    def test_load_state_does_not_alias_caller_arrays(self):
        tracker = OccupancyTracker()
        sim = self._run_sim(3, 50, [tracker])
        state = tracker.state_dict()
        frozen = {
            key: value.copy() if isinstance(value, np.ndarray) else value
            for key, value in state.items()
        }
        twin = OccupancyTracker()
        twin.load_state(state)
        # Mutate the restored tracker by running it further.
        resumed = self._run_sim(3, 10, [])
        resumed.add_observer(twin)
        resumed.run(40)
        for key, value in frozen.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(state[key], value)
            else:
                assert state[key] == value

    def test_convergence_detector_round_trip(self):
        from repro.core.weights import WeightTable

        weights = WeightTable([1.0, 2.0])
        detector = ConvergenceDetector(weights, bound=10.0)
        state = detector.state_dict()
        twin = ConvergenceDetector(weights, bound=10.0)
        twin.load_state(state)
        assert twin.state_dict() == state

    def test_base_observer_rejects_foreign_state(self):
        import pytest

        obs = Observer()
        assert obs.state_dict() == {}
        obs.load_state({})
        with pytest.raises(ValueError):
            obs.load_state({"junk": 1})
