"""Property-based tests for the vectorised agent-level engine:
population conservation, shade-count consistency, exact seed
reproducibility and run-call chunking invariance, on both the complete
graph and an explicit CSR topology, across all kernelised protocols."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.three_majority import ThreeMajority
from repro.baselines.voter import VoterModel
from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine.array_engine import ArraySimulation
from repro.engine.observers import Observer
from repro.topology import CycleGraph

PROTOCOLS = ("diversification", "voter", "3-majority")
TOPOLOGIES = ("complete", "cycle")


def make_protocol(name: str, weights: WeightTable):
    if name == "diversification":
        return Diversification(weights)
    if name == "voter":
        return VoterModel()
    return ThreeMajority()


def make_topology(name: str, n: int):
    return None if name == "complete" else CycleGraph(n)


@st.composite
def array_setup(draw):
    k = draw(st.integers(1, 4))
    weights = WeightTable(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
                min_size=k,
                max_size=k,
            )
        )
    )
    counts = draw(st.lists(st.integers(1, 12), min_size=k, max_size=k))
    while sum(counts) < 3:
        counts[0] += 1
    colours = np.repeat(np.arange(k), counts)
    protocol = draw(st.sampled_from(PROTOCOLS))
    topology = draw(st.sampled_from(TOPOLOGIES))
    seed = draw(st.integers(0, 2**31 - 1))
    steps = draw(st.integers(0, 2000))
    return weights, colours, protocol, topology, seed, steps


def build(setup, **kwargs):
    weights, colours, protocol, topology, seed, _ = setup
    return ArraySimulation(
        make_protocol(protocol, weights),
        colours,
        k=weights.k,
        topology=make_topology(topology, colours.shape[0]),
        rng=seed,
        **kwargs,
    )


class TestSingleRunInvariants:
    @given(array_setup())
    @settings(max_examples=40, deadline=None)
    def test_population_conserved(self, setup):
        steps = setup[-1]
        simulation = build(setup)
        n = simulation.n
        simulation.run(steps)
        assert simulation.time == steps
        assert simulation.colour_counts().sum() == n

    @given(array_setup())
    @settings(max_examples=40, deadline=None)
    def test_shade_count_consistency(self, setup):
        """Counts recomputed from the raw state arrays always agree
        with the engine's count methods, and dark + light == colour."""
        weights, colours, _, _, _, steps = setup
        simulation = build(setup)
        simulation.run(steps)
        view = simulation.population
        raw_colours = np.asarray(view.colours_view())
        raw_shades = np.asarray(view.shades_view())
        k = simulation.k
        expected_colour = np.bincount(raw_colours, minlength=k)
        expected_dark = np.bincount(
            raw_colours[raw_shades > 0], minlength=k
        )
        np.testing.assert_array_equal(
            simulation.colour_counts(), expected_colour
        )
        np.testing.assert_array_equal(
            simulation.dark_counts(), expected_dark
        )
        np.testing.assert_array_equal(
            simulation.dark_counts() + simulation.light_counts(),
            simulation.colour_counts(),
        )

    @given(array_setup())
    @settings(max_examples=30, deadline=None)
    def test_exact_seed_reproducibility(self, setup):
        steps = setup[-1]
        a = build(setup).run(steps)
        b = build(setup).run(steps)
        np.testing.assert_array_equal(
            np.asarray(a.population.colours_view()),
            np.asarray(b.population.colours_view()),
        )
        np.testing.assert_array_equal(
            np.asarray(a.population.shades_view()),
            np.asarray(b.population.shades_view()),
        )
        assert a.changes == b.changes

    @given(array_setup(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_run_chunking_invariance(self, setup, fraction):
        """run(a); run(b) equals run(a + b): trajectories depend only
        on the executed-step count, not the call pattern."""
        steps = setup[-1]
        split = int(round(fraction * steps))
        whole = build(setup).run(steps)
        chunked = build(setup)
        chunked.run(split)
        chunked.run(steps - split)
        np.testing.assert_array_equal(
            np.asarray(whole.population.colours_view()),
            np.asarray(chunked.population.colours_view()),
        )
        np.testing.assert_array_equal(
            np.asarray(whole.population.shades_view()),
            np.asarray(chunked.population.shades_view()),
        )

    @given(array_setup())
    @settings(max_examples=20, deadline=None)
    def test_observer_path_matches_vectorised_path(self, setup):
        """Attaching an observer switches to change-by-change
        application with live count tables; the trajectory and the
        counts must not change."""
        steps = min(setup[-1], 600)
        plain = build(setup).run(steps)
        observed = build(setup, observers=[Observer()])
        observed.run(steps)
        np.testing.assert_array_equal(
            np.asarray(plain.population.colours_view()),
            np.asarray(observed.population.colours_view()),
        )
        # Live tables stay consistent with a fresh bincount.
        view = observed.population
        raw_colours = np.asarray(view.colours_view())
        np.testing.assert_array_equal(
            observed.colour_counts(),
            np.bincount(raw_colours, minlength=observed.k),
        )
        np.testing.assert_array_equal(
            observed.dark_counts() + observed.light_counts(),
            observed.colour_counts(),
        )

    @given(array_setup())
    @settings(max_examples=30, deadline=None)
    def test_diversification_sustainability(self, setup):
        """A colour's last dark agent can never lighten (it would have
        to sample a dark agent of its own colour), so dark counts that
        start >= 1 stay >= 1 — the paper's sustainability invariant."""
        weights, colours, _, topology, seed, steps = setup
        simulation = ArraySimulation(
            Diversification(weights),
            colours,
            k=weights.k,
            topology=make_topology(topology, colours.shape[0]),
            rng=seed,
        )
        simulation.run(steps)
        assert (simulation.dark_counts() >= 1).all()


class TestBatchedInvariants:
    @given(array_setup(), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_population_conserved_per_replication(self, setup, r):
        steps = min(setup[-1], 800)
        simulation = build(setup, replications=r)
        simulation.run(steps)
        counts = simulation.colour_counts()
        assert counts.shape == (r, simulation.k)
        assert (counts.sum(axis=1) == simulation.n).all()
        np.testing.assert_array_equal(
            simulation.dark_counts() + simulation.light_counts(), counts
        )

    @given(array_setup(), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_batched_seed_reproducibility(self, setup, r):
        steps = min(setup[-1], 800)
        a = build(setup, replications=r).run(steps)
        b = build(setup, replications=r).run(steps)
        np.testing.assert_array_equal(a.colour_counts(), b.colour_counts())
        np.testing.assert_array_equal(a.dark_counts(), b.dark_counts())
