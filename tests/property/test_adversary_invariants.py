"""Property-based tests: sustainability survives arbitrary adversarial
schedules of agent/colour additions (the paper's robustness claim)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import AddAgents, AddColour, InterventionSchedule
from repro.adversary.schedule import run_with_interventions
from repro.core.weights import WeightTable
from repro.engine.aggregate import AggregateSimulation


@st.composite
def adversarial_run(draw):
    k = draw(st.integers(1, 3))
    weights = WeightTable(
        [float(w) for w in draw(
            st.lists(st.integers(1, 5), min_size=k, max_size=k)
        )]
    )
    dark = draw(st.lists(st.integers(1, 20), min_size=k, max_size=k))
    if sum(dark) < 2:
        dark[0] += 2
    total_steps = draw(st.integers(100, 3000))
    events = []
    for _ in range(draw(st.integers(0, 4))):
        time_step = draw(st.integers(0, total_steps))
        if draw(st.booleans()):
            events.append(
                (time_step, AddAgents(
                    colour=draw(st.integers(0, k - 1)),
                    count=draw(st.integers(1, 10)),
                    dark=draw(st.booleans()),
                ))
            )
        else:
            # New colours arrive dark with >= 1 supporter, as the
            # paper's sustainability condition requires.
            events.append(
                (time_step, AddColour(
                    weight=float(draw(st.integers(1, 5))),
                    count=draw(st.integers(1, 5)),
                    dark=True,
                ))
            )
    seed = draw(st.integers(0, 2**31 - 1))
    return weights, dark, total_steps, events, seed


class TestAdversarialSustainability:
    @given(adversarial_run())
    @settings(max_examples=40, deadline=None)
    def test_dark_invariant_survives_interventions(self, setup):
        weights, dark, total_steps, events, seed = setup
        engine = AggregateSimulation(weights, dark_counts=dark, rng=seed)
        schedule = InterventionSchedule(events)
        run_with_interventions(engine, total_steps, schedule)
        assert (engine.dark_counts() >= 1).all()
        assert engine.time == total_steps

    @given(adversarial_run())
    @settings(max_examples=40, deadline=None)
    def test_population_accounting_exact(self, setup):
        weights, dark, total_steps, events, seed = setup
        engine = AggregateSimulation(weights, dark_counts=dark, rng=seed)
        expected_n = engine.n + sum(
            event.count for _, event in events
        )
        run_with_interventions(
            engine, total_steps, InterventionSchedule(events)
        )
        assert engine.n == expected_n

    @given(adversarial_run())
    @settings(max_examples=30, deadline=None)
    def test_k_grows_by_colour_additions(self, setup):
        weights, dark, total_steps, events, seed = setup
        engine = AggregateSimulation(weights, dark_counts=dark, rng=seed)
        k0 = engine.k
        additions = sum(
            isinstance(event, AddColour) for _, event in events
        )
        run_with_interventions(
            engine, total_steps, InterventionSchedule(events)
        )
        assert engine.k == k0 + additions
