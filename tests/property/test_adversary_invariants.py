"""Property-based tests: sustainability survives arbitrary adversarial
schedules of agent/colour additions (the paper's robustness claim) —
on the scalar aggregate engine and on the fused batched engines, where
every intervention applies to all replications at once."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    AddAgents,
    AddColour,
    InterventionSchedule,
    RecolourColour,
)
from repro.adversary.schedule import run_with_interventions
from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine.aggregate import AggregateSimulation
from repro.engine.array_engine import ArraySimulation
from repro.engine.batched import BatchedAggregateSimulation


@st.composite
def adversarial_run(draw):
    k = draw(st.integers(1, 3))
    weights = WeightTable(
        [float(w) for w in draw(
            st.lists(st.integers(1, 5), min_size=k, max_size=k)
        )]
    )
    dark = draw(st.lists(st.integers(1, 20), min_size=k, max_size=k))
    if sum(dark) < 2:
        dark[0] += 2
    total_steps = draw(st.integers(100, 3000))
    events = []
    for _ in range(draw(st.integers(0, 4))):
        time_step = draw(st.integers(0, total_steps))
        if draw(st.booleans()):
            events.append(
                (time_step, AddAgents(
                    colour=draw(st.integers(0, k - 1)),
                    count=draw(st.integers(1, 10)),
                    dark=draw(st.booleans()),
                ))
            )
        else:
            # New colours arrive dark with >= 1 supporter, as the
            # paper's sustainability condition requires.
            events.append(
                (time_step, AddColour(
                    weight=float(draw(st.integers(1, 5))),
                    count=draw(st.integers(1, 5)),
                    dark=True,
                ))
            )
    seed = draw(st.integers(0, 2**31 - 1))
    return weights, dark, total_steps, events, seed


class TestAdversarialSustainability:
    @given(adversarial_run())
    @settings(max_examples=40, deadline=None)
    def test_dark_invariant_survives_interventions(self, setup):
        weights, dark, total_steps, events, seed = setup
        engine = AggregateSimulation(weights, dark_counts=dark, rng=seed)
        schedule = InterventionSchedule(events)
        run_with_interventions(engine, total_steps, schedule)
        assert (engine.dark_counts() >= 1).all()
        assert engine.time == total_steps

    @given(adversarial_run())
    @settings(max_examples=40, deadline=None)
    def test_population_accounting_exact(self, setup):
        weights, dark, total_steps, events, seed = setup
        engine = AggregateSimulation(weights, dark_counts=dark, rng=seed)
        expected_n = engine.n + sum(
            event.count for _, event in events
        )
        run_with_interventions(
            engine, total_steps, InterventionSchedule(events)
        )
        assert engine.n == expected_n

    @given(adversarial_run())
    @settings(max_examples=30, deadline=None)
    def test_k_grows_by_colour_additions(self, setup):
        weights, dark, total_steps, events, seed = setup
        engine = AggregateSimulation(weights, dark_counts=dark, rng=seed)
        k0 = engine.k
        additions = sum(
            isinstance(event, AddColour) for _, event in events
        )
        run_with_interventions(
            engine, total_steps, InterventionSchedule(events)
        )
        assert engine.k == k0 + additions


class TestBatchedAdversarialSustainability:
    """The fused (R, 2k) engine under the same schedules: the paper's
    invariants must hold in every replication simultaneously."""

    @given(adversarial_run(), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_dark_invariant_survives_batch_wide(self, setup, replications):
        weights, dark, total_steps, events, seed = setup
        engine = BatchedAggregateSimulation(
            weights, dark, replications=replications, rng=seed
        )
        run_with_interventions(
            engine, total_steps, InterventionSchedule(events)
        )
        assert (engine.dark_counts() >= 1).all()
        assert engine.time == total_steps
        assert (engine.times() == total_steps).all()

    @given(adversarial_run(), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_population_accounting_exact_per_replication(
        self, setup, replications
    ):
        weights, dark, total_steps, events, seed = setup
        engine = BatchedAggregateSimulation(
            weights, dark, replications=replications, rng=seed
        )
        expected_n = engine.n + sum(event.count for _, event in events)
        run_with_interventions(
            engine, total_steps, InterventionSchedule(events)
        )
        assert engine.n == expected_n
        totals = engine.dark_counts().sum(axis=1) + (
            engine.light_counts().sum(axis=1)
        )
        assert (totals == expected_n).all()

    @given(adversarial_run(), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_array_engine_matches_invariants(self, setup, replications):
        """The fused (R, n) agent-level engine under the same schedule:
        conservation and dark survival per replication."""
        weights, dark, total_steps, events, seed = setup
        colours = np.repeat(np.arange(len(dark)), dark)
        engine = ArraySimulation(
            Diversification(weights),
            colours,
            k=weights.k,
            rng=seed,
            replications=replications,
        )
        expected_n = engine.n + sum(event.count for _, event in events)
        run_with_interventions(
            engine, total_steps, InterventionSchedule(events)
        )
        assert engine.n == expected_n
        counts = engine.colour_counts()
        assert counts.shape == (replications, weights.k)
        assert (counts.sum(axis=1) == expected_n).all()
        assert (engine.dark_counts() >= 1).all()

    @given(
        st.integers(2, 4),
        st.integers(1, 4),
        st.integers(100, 2000),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_recolour_keeps_target_dark_representative(
        self, k, replications, total_steps, seed
    ):
        """A recolouring moves the source colour's whole support onto
        the target, so the target's dark representative is never erased
        and all non-source colours stay sustainable."""
        weights = WeightTable.uniform(k, 2.0)
        engine = BatchedAggregateSimulation(
            weights, [5] * k, replications=replications, rng=seed
        )
        schedule = InterventionSchedule(
            [(total_steps // 2, RecolourColour(source=0, target=1))]
        )
        run_with_interventions(engine, total_steps, schedule)
        dark = engine.dark_counts()
        assert (dark[:, 1:] >= 1).all()
        assert (engine.colour_counts()[:, 0] == 0).all()
        totals = engine.colour_counts().sum(axis=1)
        assert (totals == 5 * k).all()
