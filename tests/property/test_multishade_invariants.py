"""Property-based tests for the multi-shade aggregate engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weights import WeightTable
from repro.engine.multishade import MultiShadeAggregate


@st.composite
def multishade_setup(draw):
    k = draw(st.integers(1, 4))
    weights = WeightTable(
        [float(w) for w in draw(
            st.lists(st.integers(1, 6), min_size=k, max_size=k)
        )]
    )
    counts = draw(st.lists(st.integers(1, 25), min_size=k, max_size=k))
    if sum(counts) < 2:
        counts[0] += 1
    seed = draw(st.integers(0, 2**31 - 1))
    steps = draw(st.integers(0, 4000))
    return weights, counts, seed, steps


class TestMultiShadeInvariants:
    @given(multishade_setup())
    @settings(max_examples=50, deadline=None)
    def test_population_conserved(self, setup):
        weights, counts, seed, steps = setup
        engine = MultiShadeAggregate(weights, counts, rng=seed)
        n0 = engine.n
        engine.run(steps)
        assert engine.n == n0
        assert engine.time == steps

    @given(multishade_setup())
    @settings(max_examples=50, deadline=None)
    def test_shades_stay_in_declared_range(self, setup):
        weights, counts, seed, steps = setup
        engine = MultiShadeAggregate(weights, counts, rng=seed)
        engine.run(steps)
        for colour in range(engine.k):
            row = engine.shade_counts(colour)
            assert len(row) == int(weights.weight(colour)) + 1
            assert all(c >= 0 for c in row)

    @given(multishade_setup())
    @settings(max_examples=50, deadline=None)
    def test_sustainability_invariant(self, setup):
        """Colours that start with a positive-shade agent always keep
        at least one — the derandomised analogue of the paper's
        sustainability argument."""
        weights, counts, seed, steps = setup
        engine = MultiShadeAggregate(weights, counts, rng=seed)
        engine.run(steps)
        assert (engine.dark_counts() >= 1).all()

    @given(multishade_setup())
    @settings(max_examples=30, deadline=None)
    def test_count_views_consistent(self, setup):
        weights, counts, seed, steps = setup
        engine = MultiShadeAggregate(weights, counts, rng=seed)
        engine.run(steps)
        np.testing.assert_array_equal(
            engine.colour_counts(),
            engine.dark_counts() + engine.light_counts(),
        )
