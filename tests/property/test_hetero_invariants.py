"""Property-based tests for the heterogeneous mega-batch engine:
padding columns never gain mass (runs *and* row-targeted
interventions), per-row population conservation, per-row clocks, and
seed reproducibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weights import WeightTable
from repro.engine.hetero import HeterogeneousAggregateBatch


def assert_padding_clean(engine: HeterogeneousAggregateBatch) -> None:
    """No mass, weight or lighten probability in padding columns, and
    per-row populations match the count totals."""
    pad = np.arange(engine.k_max)[None, :] >= engine.ks()[:, None]
    assert not engine.dark_counts()[pad].any()
    assert not engine.light_counts()[pad].any()
    assert not engine.weights_matrix()[pad].any()
    assert not engine.lighten_matrix()[pad].any()
    assert (engine.colour_counts().sum(axis=1) == engine.populations()).all()
    assert (engine.dark_counts() >= 0).all()
    assert (engine.light_counts() >= 0).all()


@st.composite
def hetero_setup(draw):
    rows = draw(st.integers(1, 8))
    tables = []
    darks = []
    lights = []
    for _ in range(rows):
        k = draw(st.integers(1, 4))
        tables.append(
            WeightTable(
                draw(
                    st.lists(
                        st.floats(
                            min_value=1.0, max_value=10.0, allow_nan=False
                        ),
                        min_size=k,
                        max_size=k,
                    )
                )
            )
        )
        dark = draw(st.lists(st.integers(1, 20), min_size=k, max_size=k))
        light = draw(st.lists(st.integers(0, 8), min_size=k, max_size=k))
        if sum(dark) + sum(light) < 2:
            dark[0] += 2
        darks.append(dark)
        lights.append(light)
    seed = draw(st.integers(0, 2**31 - 1))
    return tables, darks, lights, seed


@st.composite
def intervention_ops(draw):
    """A short programme of runs and row-targeted interventions."""
    ops = []
    for _ in range(draw(st.integers(1, 5))):
        kind = draw(
            st.sampled_from(
                ["run", "step", "add_agents", "add_colour", "recolour"]
            )
        )
        ops.append(
            (
                kind,
                draw(st.integers(0, 200)),  # steps / count
                draw(st.floats(min_value=1.0, max_value=5.0)),  # weight
                draw(st.booleans()),  # dark shade
                draw(st.integers(0, 7)),  # row-subset selector seed
            )
        )
    return ops


class TestPaddingInvariants:
    @given(hetero_setup(), st.integers(0, 600))
    @settings(max_examples=30, deadline=None)
    def test_runs_never_touch_padding(self, setup, steps):
        tables, darks, lights, seed = setup
        engine = HeterogeneousAggregateBatch(
            tables, darks, lights, rng=seed
        )
        engine.run(steps)
        assert_padding_clean(engine)
        engine.run_per_step(min(steps, 50))
        assert_padding_clean(engine)

    @given(hetero_setup(), intervention_ops())
    @settings(max_examples=30, deadline=None)
    def test_interventions_never_leak_into_padding(self, setup, ops):
        """add_colour/recolour on padded rows keep every padding column
        at zero mass, zero weight and zero lighten probability — the
        core safety property of the ``(B, k_max)`` layout."""
        tables, darks, lights, seed = setup
        engine = HeterogeneousAggregateBatch(
            tables, darks, lights, rng=seed
        )
        rows = engine.rows
        for kind, amount, weight, dark, selector in ops:
            subset = np.flatnonzero(
                np.arange(rows) % (1 + selector % rows) == 0
            )
            if kind == "run":
                engine.run(amount % 120)
            elif kind == "step":
                engine.step()
            elif kind == "add_agents":
                engine.add_agents(0, amount % 10, dark=dark, rows=subset)
            elif kind == "add_colour":
                engine.add_colour(
                    weight, amount % 10, dark=dark, rows=subset
                )
            else:
                ks = engine.ks()[subset]
                colours = int(ks.min())
                engine.recolour(0, amount % colours, rows=subset)
            assert_padding_clean(engine)
        engine.run(100)
        assert_padding_clean(engine)

    @given(hetero_setup())
    @settings(max_examples=20, deadline=None)
    def test_add_colour_lands_at_each_rows_own_column(self, setup):
        tables, darks, lights, seed = setup
        engine = HeterogeneousAggregateBatch(
            tables, darks, lights, rng=seed
        )
        before = engine.ks()
        columns = engine.add_colour(2.0, 3)
        assert (columns == before).all()
        assert (engine.ks() == before + 1).all()
        counts = engine.colour_counts()
        assert (
            counts[np.arange(engine.rows), columns] >= 3
        ).all()
        assert_padding_clean(engine)


class TestHorizonsAndClocks:
    @given(hetero_setup(), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_per_row_targets_reached_exactly(self, setup, base_steps):
        tables, darks, lights, seed = setup
        engine = HeterogeneousAggregateBatch(
            tables, darks, lights, rng=seed
        )
        steps = base_steps + 37 * np.arange(engine.rows)
        engine.run(steps)
        assert (engine.times() == steps).all()
        engine.run_per_step(np.flip(steps) % 40)
        assert (engine.times() == steps + np.flip(steps) % 40).all()

    @given(hetero_setup())
    @settings(max_examples=20, deadline=None)
    def test_exact_reproducibility_from_seed(self, setup):
        tables, darks, lights, seed = setup
        runs = []
        for _ in range(2):
            engine = HeterogeneousAggregateBatch(
                tables, darks, lights, rng=seed
            )
            engine.run(500)
            runs.append((engine.dark_counts(), engine.light_counts()))
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        np.testing.assert_array_equal(runs[0][1], runs[1][1])


class TestValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            HeterogeneousAggregateBatch(
                [WeightTable([1.0, 2.0])], [[-1, 5]]
            )

    def test_tiny_rows_rejected(self):
        with pytest.raises(ValueError, match="two agents"):
            HeterogeneousAggregateBatch(
                [WeightTable([1.0]), WeightTable([1.0, 2.0])],
                [[5], [1, 0]],
            )

    def test_padded_input_with_mass_in_padding_rejected(self):
        dark = np.array([[3, 2], [4, 1]], dtype=np.int64)
        with pytest.raises(ValueError, match="padding"):
            HeterogeneousAggregateBatch(
                [WeightTable([1.0, 2.0]), WeightTable([1.0])], dark
            )

    def test_ragged_row_length_must_match_k(self):
        with pytest.raises(ValueError, match="k_r"):
            HeterogeneousAggregateBatch(
                [WeightTable([1.0, 2.0])], [[3, 2, 1]]
            )

    def test_bad_lighten_rows_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            HeterogeneousAggregateBatch(
                [WeightTable([1.0, 2.0])], [[3, 2]],
                lighten_rows=[[0.5, 1.5]],
            )

    def test_unknown_colour_add_agents_rejected(self):
        engine = HeterogeneousAggregateBatch(
            [WeightTable([1.0, 2.0]), WeightTable([1.0])], [[3, 2], [5]]
        )
        with pytest.raises(ValueError, match="every selected row"):
            engine.add_agents(1, 2)  # row 1 has a single colour
        engine.add_agents(1, 2, rows=[0])  # row-targeted is fine

    def test_recolour_validates_per_row_colours(self):
        engine = HeterogeneousAggregateBatch(
            [WeightTable([1.0, 2.0]), WeightTable([1.0])], [[3, 2], [5]]
        )
        with pytest.raises(ValueError, match="existing colours"):
            engine.recolour(0, 1)
        engine.recolour(0, 1, rows=[0])
        assert engine.colour_counts()[0, 0] == 0

    def test_targets_must_not_precede_clocks(self):
        engine = HeterogeneousAggregateBatch(
            [WeightTable([1.0, 2.0])], [[3, 2]]
        )
        engine.run(10)
        with pytest.raises(ValueError, match="precede"):
            engine.run_to(5)
