"""Property-based tests (hypothesis) for the protocol transition rules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.derandomised import DerandomisedDiversification
from repro.core.diversification import Diversification
from repro.core.state import DARK, LIGHT, AgentState
from repro.core.weights import WeightTable

weights_strategy = st.lists(
    st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=8,
).map(WeightTable)

integer_weights_strategy = st.lists(
    st.integers(min_value=1, max_value=10).map(float),
    min_size=1,
    max_size=6,
).map(WeightTable)


@st.composite
def diversification_case(draw):
    weights = draw(weights_strategy)
    k = weights.k
    u = AgentState(
        draw(st.integers(0, k - 1)), draw(st.sampled_from([LIGHT, DARK]))
    )
    v = AgentState(
        draw(st.integers(0, k - 1)), draw(st.sampled_from([LIGHT, DARK]))
    )
    seed = draw(st.integers(0, 2**32 - 1))
    return weights, u, v, seed


class TestDiversificationRule:
    @given(diversification_case())
    @settings(max_examples=300)
    def test_output_state_always_valid(self, case):
        weights, u, v, seed = case
        protocol = Diversification(weights)
        rng = np.random.default_rng(seed)
        new = protocol.transition(u, [v], rng)
        assert 0 <= new.colour < weights.k
        assert new.shade in (LIGHT, DARK)

    @given(diversification_case())
    @settings(max_examples=300)
    def test_colour_changes_only_via_rule_one(self, case):
        weights, u, v, seed = case
        protocol = Diversification(weights)
        rng = np.random.default_rng(seed)
        new = protocol.transition(u, [v], rng)
        if new.colour != u.colour:
            assert u.is_light and v.is_dark
            assert new.colour == v.colour
            assert new.is_dark

    @given(diversification_case())
    @settings(max_examples=300)
    def test_lightening_only_on_same_dark_colour(self, case):
        weights, u, v, seed = case
        protocol = Diversification(weights)
        rng = np.random.default_rng(seed)
        new = protocol.transition(u, [v], rng)
        if u.is_dark and new.is_light:
            assert v.is_dark and v.colour == u.colour
            assert new.colour == u.colour

    @given(diversification_case())
    @settings(max_examples=300)
    def test_dark_observer_never_adopts(self, case):
        """A dark agent's colour is immutable in a single interaction."""
        weights, u, v, seed = case
        protocol = Diversification(weights)
        rng = np.random.default_rng(seed)
        if u.is_dark:
            new = protocol.transition(u, [v], rng)
            assert new.colour == u.colour


@st.composite
def derandomised_case(draw):
    weights = draw(integer_weights_strategy)
    k = weights.k
    u_colour = draw(st.integers(0, k - 1))
    v_colour = draw(st.integers(0, k - 1))
    u = AgentState(
        u_colour, draw(st.integers(0, int(weights.weight(u_colour))))
    )
    v = AgentState(
        v_colour, draw(st.integers(0, int(weights.weight(v_colour))))
    )
    return weights, u, v


class TestDerandomisedRule:
    @given(derandomised_case())
    @settings(max_examples=300)
    def test_shade_stays_in_range(self, case):
        weights, u, v = case
        protocol = DerandomisedDiversification(weights)
        new = protocol.transition(u, [v], np.random.default_rng(0))
        assert 0 <= new.shade <= int(weights.weight(new.colour))

    @given(derandomised_case())
    @settings(max_examples=300)
    def test_shade_decreases_by_at_most_one(self, case):
        weights, u, v = case
        protocol = DerandomisedDiversification(weights)
        new = protocol.transition(u, [v], np.random.default_rng(0))
        if new.colour == u.colour:
            assert new.shade in (u.shade, u.shade - 1,
                                 int(weights.weight(u.colour)))

    @given(derandomised_case())
    @settings(max_examples=300)
    def test_adoption_only_from_shade_zero(self, case):
        weights, u, v = case
        protocol = DerandomisedDiversification(weights)
        new = protocol.transition(u, [v], np.random.default_rng(0))
        if new.colour != u.colour:
            assert u.shade == 0
            assert v.shade > 0
            assert new.shade == int(weights.weight(v.colour))

    @given(derandomised_case())
    @settings(max_examples=200)
    def test_deterministic(self, case):
        weights, u, v = case
        protocol = DerandomisedDiversification(weights)
        a = protocol.transition(u, [v], np.random.default_rng(0))
        b = protocol.transition(u, [v], np.random.default_rng(999))
        assert a == b
