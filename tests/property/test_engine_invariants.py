"""Property-based tests for engine-level invariants: conservation,
sustainability, count consistency."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diversification import Diversification
from repro.core.weights import WeightTable
from repro.engine.aggregate import AggregateSimulation
from repro.engine.population import Population
from repro.engine.simulator import Simulation


@st.composite
def aggregate_setup(draw):
    k = draw(st.integers(1, 5))
    weights = WeightTable(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
                min_size=k,
                max_size=k,
            )
        )
    )
    dark = draw(
        st.lists(st.integers(1, 30), min_size=k, max_size=k)
    )
    light = draw(
        st.lists(st.integers(0, 10), min_size=k, max_size=k)
    )
    if sum(dark) + sum(light) < 2:
        dark[0] += 2
    seed = draw(st.integers(0, 2**31 - 1))
    steps = draw(st.integers(0, 3000))
    return weights, dark, light, seed, steps


class TestAggregateInvariants:
    @given(aggregate_setup())
    @settings(max_examples=60, deadline=None)
    def test_population_conserved(self, setup):
        weights, dark, light, seed, steps = setup
        engine = AggregateSimulation(
            weights, dark_counts=dark, light_counts=light, rng=seed
        )
        n0 = engine.n
        engine.run(steps)
        assert engine.n == n0
        assert engine.time == steps

    @given(aggregate_setup())
    @settings(max_examples=60, deadline=None)
    def test_sustainability_invariant(self, setup):
        """Dark counts that start >= 1 never reach 0 (the paper's
        sustainability argument, verified mechanically)."""
        weights, dark, light, seed, steps = setup
        engine = AggregateSimulation(
            weights, dark_counts=dark, light_counts=light, rng=seed
        )
        engine.run(steps)
        assert (engine.dark_counts() >= 1).all()

    @given(aggregate_setup())
    @settings(max_examples=40, deadline=None)
    def test_counts_non_negative(self, setup):
        weights, dark, light, seed, steps = setup
        engine = AggregateSimulation(
            weights, dark_counts=dark, light_counts=light, rng=seed
        )
        for _ in range(min(steps, 500)):
            engine.step()
            assert (engine.dark_counts() >= 0).all()
            assert (engine.light_counts() >= 0).all()


@st.composite
def agent_setup(draw):
    k = draw(st.integers(1, 4))
    weights = WeightTable(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
                min_size=k,
                max_size=k,
            )
        )
    )
    counts = draw(st.lists(st.integers(1, 12), min_size=k, max_size=k))
    if sum(counts) < 2:
        counts[0] += 1
    seed = draw(st.integers(0, 2**31 - 1))
    steps = draw(st.integers(0, 2000))
    return weights, counts, seed, steps


class TestAgentEngineInvariants:
    @given(agent_setup())
    @settings(max_examples=40, deadline=None)
    def test_population_and_counts_consistent(self, setup):
        weights, counts, seed, steps = setup
        protocol = Diversification(weights)
        colours = [
            colour for colour, count in enumerate(counts)
            for _ in range(count)
        ]
        population = Population.from_colours(colours, protocol, k=weights.k)
        simulation = Simulation(protocol, population, rng=seed)
        simulation.run(steps)
        # Recompute counts from raw states and compare with the
        # incrementally maintained tallies.
        recomputed_colour = np.zeros(weights.k, dtype=np.int64)
        recomputed_dark = np.zeros(weights.k, dtype=np.int64)
        for state in population.states():
            recomputed_colour[state.colour] += 1
            if state.shade > 0:
                recomputed_dark[state.colour] += 1
        np.testing.assert_array_equal(
            recomputed_colour, population.colour_counts()
        )
        np.testing.assert_array_equal(
            recomputed_dark, population.dark_counts()
        )
        np.testing.assert_array_equal(
            population.colour_counts(),
            population.dark_counts() + population.light_counts(),
        )

    @given(agent_setup())
    @settings(max_examples=40, deadline=None)
    def test_sustainability_agent_engine(self, setup):
        weights, counts, seed, steps = setup
        protocol = Diversification(weights)
        colours = [
            colour for colour, count in enumerate(counts)
            for _ in range(count)
        ]
        population = Population.from_colours(colours, protocol, k=weights.k)
        simulation = Simulation(protocol, population, rng=seed)
        simulation.run(steps)
        assert (population.dark_counts() >= 1).all()


class TestPotentialInvariants:
    @given(
        st.lists(st.integers(0, 500), min_size=2, max_size=6),
        st.lists(
            st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
            min_size=2,
            max_size=6,
        ),
    )
    @settings(max_examples=150)
    def test_phi_non_negative_and_zero_iff_balanced(self, counts, weights):
        from repro.analysis.potentials import phi

        size = min(len(counts), len(weights))
        counts_arr = np.asarray(counts[:size], dtype=float)
        table = WeightTable(weights[:size])
        value = phi(counts_arr, table)
        assert value >= -1e-6
        ratios = counts_arr / table.as_array()
        if np.allclose(ratios, ratios[0]):
            assert abs(value) < 1e-6
        else:
            assert value > 0
