"""Property-based tests for the analysis toolbox."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.markov import (
    equilibrium_chain,
    stationary_distribution,
    theoretical_stationary,
    total_variation,
)
from repro.analysis.random_walks import gamblers_ruin
from repro.core.weights import WeightTable

weights_strategy = st.lists(
    st.floats(min_value=1.0, max_value=30.0, allow_nan=False),
    min_size=1,
    max_size=6,
).map(WeightTable)


class TestChainProperties:
    @given(weights_strategy, st.integers(2, 10_000))
    @settings(max_examples=80)
    def test_chain_is_stochastic(self, weights, n):
        P = equilibrium_chain(weights, n)
        assert (P >= 0).all()
        np.testing.assert_allclose(P.sum(axis=1), 1.0, atol=1e-12)

    @given(weights_strategy, st.integers(2, 10_000))
    @settings(max_examples=80)
    def test_theoretical_pi_is_stationary(self, weights, n):
        P = equilibrium_chain(weights, n)
        pi = theoretical_stationary(weights)
        np.testing.assert_allclose(pi @ P, pi, atol=1e-12)
        assert abs(pi.sum() - 1.0) < 1e-12

    @given(weights_strategy, st.integers(2, 500))
    @settings(max_examples=30, deadline=None)
    def test_solver_agrees_with_theory(self, weights, n):
        P = equilibrium_chain(weights, n)
        assert total_variation(
            stationary_distribution(P), theoretical_stationary(weights)
        ) < 1e-7

    @given(weights_strategy)
    @settings(max_examples=80)
    def test_dark_mass_dominates_light_mass_per_colour(self, weights):
        """π(D_i) = w·π(L_i) >= π(L_i), since w >= k >= 1."""
        pi = theoretical_stationary(weights)
        k = weights.k
        for i in range(k):
            assert pi[i] >= pi[k + i] - 1e-12
            np.testing.assert_allclose(
                pi[i], weights.total * pi[k + i], atol=1e-12
            )


class TestGamblersRuinProperties:
    @given(
        st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
        st.integers(1, 200),
        st.integers(0, 200),
    )
    @settings(max_examples=200)
    def test_probabilities_valid(self, p, b, s):
        assume(s <= b)
        assume(abs(p - 0.5) > 1e-9 or True)
        result = gamblers_ruin(p, b, s)
        assert -1e-9 <= result.hit_top <= 1 + 1e-9
        assert abs(result.hit_top + result.hit_bottom - 1.0) < 1e-9

    @given(
        st.floats(min_value=0.51, max_value=0.95),
        st.integers(2, 100),
    )
    @settings(max_examples=100)
    def test_upward_bias_beats_fair_coin(self, p, b):
        s = b // 2
        assume(0 < s < b)
        assert gamblers_ruin(p, b, s).hit_top >= (
            gamblers_ruin(0.5, b, s).hit_top - 1e-9
        )

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(2, 60),
    )
    @settings(max_examples=100)
    def test_monotone_in_start(self, p, b):
        values = [gamblers_ruin(p, b, s).hit_top for s in range(b + 1)]
        assert all(
            a <= c + 1e-9 for a, c in zip(values, values[1:])
        )


class TestWeightTableProperties:
    @given(weights_strategy)
    @settings(max_examples=150)
    def test_share_identities(self, weights):
        fair = weights.fair_shares()
        dark = weights.dark_shares()
        light = weights.light_shares()
        assert abs(fair.sum() - 1.0) < 1e-9
        np.testing.assert_allclose(dark + light, fair, atol=1e-12)
        # dark share / light share = w for every colour.
        np.testing.assert_allclose(
            dark, weights.total * light, atol=1e-12
        )

    @given(weights_strategy, st.floats(min_value=1.0, max_value=20.0))
    @settings(max_examples=100)
    def test_add_colour_preserves_prefix(self, weights, extra):
        before = list(weights)
        weights.add_colour(extra)
        assert list(weights)[:-1] == before
        assert weights.weight(weights.k - 1) == extra
